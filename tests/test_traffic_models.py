"""Tests for the pluggable traffic-model subsystem.

Covers the contracts the subsystem promises:

* :class:`TrafficSpec` parsing/validation and the CLI syntax;
* every generator's schedule is a pure function of its RNG stream, streams
  are independent across flows, and ``stop`` is honored mid-burst;
* endpoint patterns (convergecast, pairs) select what they claim, and
  selection failures name the offending ``(count, node_count)``;
* flow dynamics rewrite starts/stops deterministically;
* non-CBR cells honor the determinism contract
  (serial == parallel == cached, pinned by digest) and partition the
  result-store key space;
* pure-CBR payloads carry no traffic block (the byte-identity guard — the
  digests themselves are pinned in ``test_orchestration.py`` and
  ``test_mobility.py``);
* duplicate accounting: a lost-ACK retransmission increments
  ``duplicates``, never ``received``, and delivery ratio is an unclamped
  quotient so accounting bugs would actually surface.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.experiments.parallel import grid_cells, run_grid
from repro.experiments.runner import run_single
from repro.experiments.scenarios import (
    Scenario,
    bursty_small,
    convergecast_grid,
    grid_network,
)
from repro.experiments.store import (
    CACHE_FORMAT_VERSION,
    ResultStore,
    cell_key,
    scenario_fingerprint,
)
from repro.metrics.collectors import RunResult, aggregate_traffic
from repro.metrics.stats import percentile
from repro.net.topology import Placement
from repro.sim.engine import Simulator
from repro.traffic.cbr import FlowStats
from repro.traffic.flows import (
    FlowSelectionError,
    FlowSpec,
    convergecast_flows,
    pairs_flows,
    random_flows,
)
from repro.traffic.models import (
    TRAFFIC_MODELS,
    FlowDynamicsSpec,
    OnOffModel,
    PoissonModel,
    TrafficSpec,
    apply_flow_dynamics,
    parse_traffic_spec,
)
from tests.conftest import build_network


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _tiny(name: str, **overrides) -> Scenario:
    """A 3x3 grid cell that simulates in well under a second."""
    defaults = dict(
        name=name,
        node_count=9,
        field_size=120.0,
        flow_count=3,
        rates_kbps=(2.0,),
        duration=40.0,
        runs=1,
        grid=True,
        protocols=("DSR-ODPM",),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


_LINK = Placement({0: (0.0, 0.0), 1: (100.0, 0.0)}, width=100.0, height=1.0)


class TestTrafficSpec:
    def test_defaults_are_cbr(self):
        spec = TrafficSpec()
        assert spec.is_cbr
        assert spec.build().arrivals is not None

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            TrafficSpec("fractal")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="takes no parameter"):
            TrafficSpec("poisson", (("burstiness", 2.0),))

    def test_params_canonicalized(self):
        a = TrafficSpec("onoff", (("on", 2.0), ("off", 6.0)))
        b = TrafficSpec("onoff", (("off", 6), ("on", 2)))
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_parse_cli_syntax(self):
        assert parse_traffic_spec("poisson") == TrafficSpec("poisson")
        assert parse_traffic_spec("onoff:on=2,off=8") == TrafficSpec(
            "onoff", (("on", 2.0), ("off", 8.0))
        )
        with pytest.raises(ValueError, match="PARAM=VALUE"):
            parse_traffic_spec("onoff:on")
        with pytest.raises(ValueError, match="bad traffic parameter value"):
            parse_traffic_spec("vbr:jitter=lots")

    def test_fingerprint_roundtrip(self):
        spec = TrafficSpec("vbr", (("jitter", 0.5),))
        assert TrafficSpec.from_payload(spec.fingerprint()) == spec

    def test_model_param_validation(self):
        with pytest.raises(ValueError):
            OnOffModel(on=0.0)
        # Bad *values* (not just names) surface at spec construction, so a
        # CLI typo fails in argparse instead of deep inside a sweep worker.
        with pytest.raises(ValueError):
            TrafficSpec("vbr", (("jitter", 1.5),))
        with pytest.raises(ValueError):
            parse_traffic_spec("onoff:on=0")
        # Duplicate names would mean one behaviour under two cache keys.
        with pytest.raises(ValueError, match="duplicate traffic parameter"):
            parse_traffic_spec("onoff:on=1,on=2")


class TestGeneratorDeterminism:
    SPEC = FlowSpec(flow_id=0, source=0, destination=1, rate_bps=4096.0)

    @pytest.mark.parametrize("model_name", sorted(TRAFFIC_MODELS))
    def test_same_seed_same_schedule(self, model_name):
        model = TRAFFIC_MODELS[model_name]()

        def first(n: int) -> list:
            gen = model.arrivals(self.SPEC, random.Random(42))
            return [next(gen) for _ in range(n)]

        assert first(100) == first(100)

    @pytest.mark.parametrize("model_name", sorted(TRAFFIC_MODELS))
    def test_gaps_and_sizes_sane(self, model_name):
        model = TRAFFIC_MODELS[model_name]()
        gen = model.arrivals(self.SPEC, random.Random(7))
        for _ in range(200):
            gap, size = next(gen)
            assert gap >= 0.0
            assert size >= 1

    def test_cbr_never_touches_rng(self):
        """The byte-identity guarantee: CBR draws nothing from its stream."""

        class Tripwire(random.Random):
            def random(self):  # pragma: no cover - failure path
                raise AssertionError("CBR touched the RNG")

        gen = TRAFFIC_MODELS["cbr"]().arrivals(self.SPEC, Tripwire())
        schedule = [next(gen) for _ in range(10)]
        assert schedule[0] == (0.0, 128)
        assert all(gap == self.SPEC.interval for gap, _ in schedule[1:])

    def test_flow_streams_independent(self):
        """Draws on one flow's stream never perturb another's schedule."""
        model = PoissonModel()

        def alone() -> list:
            sim = Simulator(seed=7)
            gen = model.arrivals(self.SPEC, sim.rng("traffic/0"))
            return [next(gen) for _ in range(50)]

        def interleaved() -> list:
            sim = Simulator(seed=7)
            gen0 = model.arrivals(self.SPEC, sim.rng("traffic/0"))
            gen1 = model.arrivals(self.SPEC, sim.rng("traffic/1"))
            out = []
            for _ in range(50):
                out.append(next(gen0))
                next(gen1)  # concurrent flow drawing from its own stream
            return out

        assert alone() == interleaved()

    def test_distinct_flows_get_distinct_schedules(self):
        model = PoissonModel()
        sim = Simulator(seed=7)
        gen0 = model.arrivals(self.SPEC, sim.rng("traffic/0"))
        gen1 = model.arrivals(self.SPEC, sim.rng("traffic/1"))
        assert [next(gen0) for _ in range(20)] != [
            next(gen1) for _ in range(20)
        ]


class TestTrafficSourceEndToEnd:
    def test_poisson_offered_load_near_nominal(self):
        spec = FlowSpec(
            flow_id=0,
            source=0,
            destination=1,
            rate_bps=4096.0,
            start=1.0,
            traffic=TrafficSpec("poisson"),
        )
        network = build_network(_LINK, "DSR-Active", [spec], duration=31.0)
        result = network.run()
        stats = result.flows[0]
        # 30 s at a nominal 4 packets/s: the Poisson count is random but
        # seed-pinned; anything in a generous band proves the model ran.
        assert 60 <= stats.sent <= 180
        assert stats.received >= stats.sent - 1
        assert result.traffic is not None
        assert result.traffic["latency_p95"] >= result.traffic["latency_p50"]

    def test_stop_honored_mid_burst(self):
        """The first due packet at or after ``stop`` ends the chain."""
        traffic = TrafficSpec("onoff", (("on", 2.0), ("off", 1.0)))
        spec = FlowSpec(
            flow_id=0,
            source=0,
            destination=1,
            rate_bps=4096.0,
            start=1.0,
            stop=6.0,
            traffic=traffic,
        )
        network = build_network(_LINK, "DSR-Active", [spec], duration=12.0)
        stats = network.run().flows[0]
        # Replay the same named stream offline: emissions are exactly the
        # arrivals strictly before ``stop``, wherever the burst stood.
        gen = traffic.build().arrivals(
            spec, Simulator(seed=1).rng("traffic/0")
        )
        now, expected = spec.start, 0
        for gap, _ in gen:
            now += gap
            if now >= spec.stop:
                break
            expected += 1
        assert stats.sent == expected > 0

    def test_vbr_byte_accounting(self):
        spec = FlowSpec(
            flow_id=0,
            source=0,
            destination=1,
            rate_bps=4096.0,
            start=1.0,
            traffic=TrafficSpec("vbr"),
        )
        network = build_network(_LINK, "DSR-Active", [spec], duration=21.0)
        result = network.run()
        stats = result.flows[0]
        # Sizes vary, so byte counters diverge from count * packet_bytes.
        assert stats.sent_bytes != stats.sent * spec.packet_bytes
        assert 0 < stats.received_bytes <= stats.sent_bytes
        assert stats.delivered_bits == stats.received_bytes * 8
        payload_entry = result.to_payload()["flows"][0]
        assert payload_entry["received_bytes"] == stats.received_bytes

    def test_latency_percentiles_and_jitter_recorded(self):
        spec = FlowSpec(
            flow_id=0,
            source=0,
            destination=1,
            rate_bps=4096.0,
            start=1.0,
            traffic=TrafficSpec("poisson"),
        )
        network = build_network(_LINK, "DSR-Active", [spec], duration=16.0)
        result = network.run()
        stats = result.flows[0]
        assert len(stats.latencies) == stats.received
        assert stats.latency_percentile(0.5) > 0.0
        assert stats.jitter >= 0.0
        block = result.traffic
        assert block is not None
        for key in ("offered_bytes", "received_bytes", "latency_p50",
                    "latency_p95", "latency_p99", "jitter"):
            assert key in block


class TestDuplicateAccounting:
    def test_lost_ack_retransmission_counts_as_duplicate(self):
        """A replayed frame (lost-ACK retransmit) never inflates delivery."""
        from repro.sim.packet import make_data_packet

        spec = FlowSpec(
            flow_id=0, source=0, destination=1, rate_bps=4096.0, start=1.0
        )
        network = build_network(_LINK, "DSR-Active", [spec], duration=6.0)
        result = network.run()
        stats = result.flows[0]
        received, duplicates = stats.received, stats.duplicates
        assert received > 0 and duplicates == 0
        # Replay seqno 0 exactly as the MAC delivers it when its ACK was
        # lost and the previous hop retransmitted an already-seen frame.
        network.nodes[1].deliver_to_app(
            make_data_packet(
                origin=0, final_dst=1, src=0, dst=1, flow_id=0, seqno=0,
                created_at=0.0,
            )
        )
        assert stats.received == received  # unchanged
        assert stats.duplicates == duplicates + 1
        assert stats.delivery_ratio <= 1.0

    def test_delivery_ratio_is_not_clamped(self):
        """An accounting bug (received > sent) must surface, not clamp."""
        spec = FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0)
        broken = FlowStats(spec=spec, sent=10, received=12)
        assert broken.delivery_ratio == pytest.approx(1.2)


class TestFlowPatterns:
    NODES = list(range(20))

    def test_convergecast_single_sink(self):
        flows = convergecast_flows(self.NODES, 8, 4000.0, random.Random(1))
        sinks = {flow.destination for flow in flows}
        assert len(sinks) == 1
        sources = [flow.source for flow in flows]
        assert len(set(sources)) == 8
        assert sinks.isdisjoint(sources)

    def test_pairs_disjoint_and_bidirectional(self):
        flows = pairs_flows(self.NODES, 6, 4000.0, random.Random(1))
        assert len(flows) == 6
        endpoints = [frozenset((f.source, f.destination)) for f in flows]
        # Three distinct pairs, each appearing once per direction.
        assert len(set(endpoints)) == 3
        for pair in set(endpoints):
            directions = {
                (f.source, f.destination)
                for f in flows
                if frozenset((f.source, f.destination)) == pair
            }
            assert len(directions) == 2

    def test_pairs_odd_count_leaves_last_unidirectional(self):
        flows = pairs_flows(self.NODES, 5, 4000.0, random.Random(1))
        assert len(flows) == 5
        assert len({frozenset((f.source, f.destination)) for f in flows}) == 3

    def test_selection_errors_name_the_dimensions(self):
        with pytest.raises(FlowSelectionError) as excinfo:
            convergecast_flows(self.NODES, 20, 4000.0, random.Random(1))
        assert "20 flows from 20 nodes" in str(excinfo.value)
        assert excinfo.value.count == 20
        assert excinfo.value.node_count == 20

        with pytest.raises(FlowSelectionError) as excinfo:
            random_flows([1, 2], 3, 4000.0, random.Random(1))
        assert "3 flows from 2 nodes" in str(excinfo.value)

        with pytest.raises(FlowSelectionError) as excinfo:
            pairs_flows([1, 2, 3], 4, 4000.0, random.Random(1))
        assert excinfo.value.node_count == 3

    def test_selection_error_pickles(self):
        import pickle

        error = FlowSelectionError(5, 3, "boom")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.count == 5 and clone.node_count == 3
        assert str(clone) == str(error)

    def test_scenario_rejects_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown flow pattern"):
            _tiny("tiny-bad-pattern", pattern="gossip")


class TestFlowDynamics:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FlowDynamicsSpec(arrival_window=(0.5, 0.2))
        with pytest.raises(ValueError):
            FlowDynamicsSpec(hold_fraction=0.0)

    def test_rewrite_is_deterministic_and_windowed(self):
        flows = [
            FlowSpec(flow_id=i, source=i, destination=10 + i, rate_bps=4000.0)
            for i in range(8)
        ]
        spec = FlowDynamicsSpec(arrival_window=(0.1, 0.4), hold_fraction=0.3)

        def rewrite(seed: int):
            return apply_flow_dynamics(
                flows, spec, 100.0, random.Random(seed)
            )

        first, again, other = rewrite(1), rewrite(1), rewrite(2)
        assert first == again
        assert first != other
        for flow in first:
            assert 10.0 <= flow.start <= 40.0
            assert flow.stop is None or flow.start < flow.stop < 100.0

    def test_scenario_flows_apply_dynamics(self):
        scenario = _tiny("tiny-dynamics").with_flow_dynamics(
            FlowDynamicsSpec(arrival_window=(0.1, 0.5), hold_fraction=0.5)
        )
        flows = scenario.flows(seed=1, rate_kbps=2.0)
        assert flows == scenario.flows(seed=1, rate_kbps=2.0)
        starts = {flow.start for flow in flows}
        assert len(starts) == len(flows)  # staggered, not the [20, 25] window
        assert all(4.0 <= start <= 20.0 for start in starts)


class TestTrafficDeterminismContract:
    """Non-CBR cells are pinned exactly like the static fig8 cell.

    If a PR intentionally changes traffic behaviour, re-record these
    digests AND bump ``CACHE_FORMAT_VERSION``.
    """

    #: sha256 of the canonical-JSON payloads of the tiny 3x3 cells at
    #: (DSR-ODPM, 2 Kbit/s, seed 1), one per generator.
    TINY_DIGESTS = {
        "poisson": (
            "fc4a0ec4bcdbbeee0f9fd6bf253464bfc9494ed6ca23b0ace1875b2af0ed913f"
        ),
        "onoff": (
            "13e9759747bb5734c9e9cf64811974baeed2e68d72bd76fedf2240cf43da527b"
        ),
        "vbr": (
            "7ceead976456782ac798a9155b1bd022dbafa04aca25913c8578fac210959c85"
        ),
    }
    #: sha256 of the bursty-small (smoke) cell at (DSR-ODPM, 4 Kbit/s, seed 1).
    BURSTY_CELL_DIGEST = (
        "1f74906d950ebea9d247530ec5dd57812c1c44353f026dba98a9edfae7832936"
    )
    #: sha256 of the convergecast-grid (smoke) cell at (DSR-ODPM, 2 Kbit/s,
    #: seed 1).
    CONVERGECAST_CELL_DIGEST = (
        "dfb233432aedae211c121ab3680aa6f57d709940d5a4693ad89a8325860c5bff"
    )

    @staticmethod
    def _model_scenario(model_name: str) -> Scenario:
        specs = {
            "poisson": TrafficSpec("poisson"),
            "onoff": TrafficSpec("onoff", (("on", 1.0), ("off", 3.0))),
            "vbr": TrafficSpec("vbr"),
        }
        return _tiny(
            "tiny-traffic-%s" % model_name, traffic=specs[model_name]
        )

    @pytest.mark.parametrize("model_name", sorted(TINY_DIGESTS))
    def test_model_cell_serial_parallel_cached_identical(
        self, model_name, tmp_path
    ):
        scenario = self._model_scenario(model_name)
        cells = grid_cells(scenario, ("DSR-ODPM",), (2.0,), seeds=(1,))
        (cell,) = cells
        serial = run_grid(scenario, cells, jobs=1)
        parallel = run_grid(scenario, cells, jobs=2)
        store = ResultStore(tmp_path)
        run_grid(scenario, cells, jobs=1, store=store)
        cached = run_grid(scenario, cells, jobs=1, store=store)
        assert store.hits == 1  # second pass simulated nothing
        digests = {
            _digest(results[cell].to_payload())
            for results in (serial, parallel, cached)
        }
        assert digests == {self.TINY_DIGESTS[model_name]}

    def test_bursty_preset_digest_pinned(self):
        result = run_single(bursty_small(scale="smoke"), "DSR-ODPM", 4.0, seed=1)
        assert result.traffic is not None
        assert _digest(result.to_payload()) == self.BURSTY_CELL_DIGEST

    def test_convergecast_preset_digest_pinned(self):
        result = run_single(
            convergecast_grid(scale="smoke"), "DSR-ODPM", 2.0, seed=1
        )
        assert result.traffic is not None
        assert _digest(result.to_payload()) == self.CONVERGECAST_CELL_DIGEST

    def test_cache_format_version_bumped_for_traffic(self):
        """PR contract: the traffic subsystem invalidates v2 caches."""
        assert CACHE_FORMAT_VERSION == 3

    def test_traffic_params_enter_cell_key(self):
        static = grid_network(scale="smoke")
        poisson = static.with_traffic(TrafficSpec("poisson"))
        pattern = static.with_pattern("convergecast")
        dynamic = static.with_flow_dynamics()
        keys = {
            cell_key(scenario, "DSR-ODPM", 2.0, 1)
            for scenario in (static, poisson, pattern, dynamic)
        }
        assert len(keys) == 4
        slower = static.with_traffic(TrafficSpec("onoff", (("on", 9.0),)))
        assert cell_key(slower, "DSR-ODPM", 2.0, 1) != cell_key(
            static.with_traffic(TrafficSpec("onoff")), "DSR-ODPM", 2.0, 1
        )

    def test_fingerprint_covers_workload_axes(self):
        fingerprint = scenario_fingerprint(convergecast_grid(scale="smoke"))
        assert fingerprint["traffic"]["model"] == "poisson"
        assert fingerprint["pattern"] == "convergecast"
        assert fingerprint["flow_dynamics"] is None


class TestPayloadCompatibility:
    def test_pure_cbr_payload_has_no_traffic_keys(self):
        scenario = grid_network(scale="smoke").scaled(duration=10.0, runs=1)
        result = run_single(scenario, "DSR-ODPM", 2.0, seed=1)
        payload = result.to_payload()
        assert result.traffic is None
        assert "traffic" not in payload
        for entry in payload["flows"]:
            assert "traffic" not in entry["spec"]
            assert "sent_bytes" not in entry

    def test_non_cbr_payload_roundtrips(self):
        scenario = _tiny("tiny-roundtrip", traffic=TrafficSpec("poisson"))
        result = run_single(scenario, "DSR-ODPM", 2.0, seed=1)
        clone = RunResult.from_payload(result.to_payload())
        assert clone.traffic == result.traffic
        assert _digest(clone.to_payload()) == _digest(result.to_payload())
        assert clone.flows[0].spec.traffic == TrafficSpec("poisson")
        assert clone.delivered_bits == result.delivered_bits

    def test_aggregate_traffic_mixed_runs(self):
        def make(seed: int, traffic: dict | None) -> RunResult:
            return RunResult(
                protocol="DSR-ODPM",
                seed=seed,
                duration=1.0,
                flows=[],
                energy_summary={"e_network": 1.0, "transmit_energy": 0.0},
                traffic=traffic,
            )

        runs = [
            make(1, {"jitter": 0.2}),
            make(2, {"jitter": 0.4}),
            make(3, None),  # pure-CBR runs contribute nothing
        ]
        aggregated = aggregate_traffic(runs)
        assert aggregated["jitter"].mean == pytest.approx(0.3)
        assert aggregate_traffic([make(1, None)]) == {}


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0

    def test_interpolates(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert percentile(values, 0.5) == pytest.approx(1.5)
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 3.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
