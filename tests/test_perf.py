"""Tests for the performance observability layer (:mod:`repro.perf`)."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BENCH_FORMAT_VERSION,
    format_benchmark_report,
    profile_call,
    run_kernel_benchmarks,
    write_benchmark_report,
)


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert "cumulative" in report  # pstats sort header
        assert "function calls" in report

    def test_dump_path_writes_pstats_file(self, tmp_path):
        import pstats

        dump = tmp_path / "profile.pstats"
        profile_call(lambda: sorted(range(100)), dump_path=str(dump))
        assert dump.exists()
        stats = pstats.Stats(str(dump))  # must be loadable
        assert stats.total_calls >= 1

    def test_exception_propagates_after_disable(self):
        with pytest.raises(RuntimeError, match="boom"):
            profile_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))


class TestKernelBenchmarks:
    @pytest.fixture(scope="class")
    def report(self):
        # Tiny sizes: the structure is under test, not the numbers.
        return run_kernel_benchmarks(
            events=2_000, timers=10, restarts=5, rate_kbps=2.0, seed=1
        )

    def test_report_structure(self, report):
        assert report["version"] == BENCH_FORMAT_VERSION
        assert set(report["benchmarks"]) == {
            "schedule_fire",
            "timer_churn",
            "fig8_cell",
        }
        for entry in report["benchmarks"].values():
            assert entry["events_per_second"] > 0
            assert entry["seconds"] > 0

    def test_schedule_fire_counts_every_event(self, report):
        assert report["benchmarks"]["schedule_fire"]["events"] == 2_000

    def test_timer_churn_heap_stays_bounded(self, report):
        churn = report["benchmarks"]["timer_churn"]
        assert churn["final_queue_size"] <= 200  # compaction held the line

    def test_fig8_cell_names_its_configuration(self, report):
        cell = report["benchmarks"]["fig8_cell"]
        assert cell["protocol"] == "DSR-ODPM"
        assert cell["rate_kbps"] == 2.0
        assert cell["events"] > 0

    def test_write_report_roundtrips(self, report, tmp_path):
        path = tmp_path / "BENCH_kernel.json"
        write_benchmark_report(report, str(path))
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == report

    def test_format_report_lists_all_benchmarks(self, report):
        text = format_benchmark_report(report)
        for name in report["benchmarks"]:
            assert name in text


class TestCli:
    def test_perf_command_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "perf", "--out", str(out), "--events", "1000",
            "--timers", "5", "--restarts", "3", "--rate", "2",
        ])
        assert code == 0
        assert "Kernel throughput" in capsys.readouterr().out
        assert json.loads(out.read_text(encoding="utf-8"))["benchmarks"]

    def test_profile_flag_prints_report(self, capsys):
        from repro.cli import main

        assert main(["table1", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "function calls" in captured.err

    def test_profile_dump_writes_stats(self, tmp_path, capsys):
        from repro.cli import main

        dump = tmp_path / "cli.pstats"
        assert main(["table1", "--profile", "--profile-dump", str(dump)]) == 0
        assert dump.exists()
        assert "raw profile dumped" in capsys.readouterr().err

    def test_committed_baseline_is_valid(self):
        """The repo-root BENCH_kernel.json must parse and carry throughput."""
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
        report = json.loads(path.read_text(encoding="utf-8"))
        assert report["version"] == BENCH_FORMAT_VERSION
        for entry in report["benchmarks"].values():
            assert entry["events_per_second"] > 0
