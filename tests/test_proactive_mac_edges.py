"""Remaining edge cases: proactive data path, MAC response staleness."""

import pytest

from repro.core.radio import CABLETRON, PowerMode
from repro.net.topology import Placement
from repro.routing.proactive import DsdvUpdate, UpdateEntry
from repro.sim.packet import PacketKind, make_data_packet
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


@pytest.fixture
def triangle_placement():
    return Placement(
        {0: (0.0, 0.0), 1: (200.0, 0.0), 2: (100.0, 100.0)}, 200.0, 100.0
    )


class TestProactiveDataPath:
    def test_originated_data_buffered_until_route_appears(
        self, triangle_placement
    ):
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=2000.0, start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows,
                            duration=1.0)
        routing = net.nodes[0].routing
        packet = make_data_packet(origin=0, final_dst=1, src=0, dst=0,
                                  flow_id=0, seqno=0)
        routing.originate_data(packet)
        assert routing.buffer.pending(1) == 1
        # A route arrives: the buffer drains immediately.
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=0.0, seqno=2),),
            full_dump=True,
        ))
        assert routing.buffer.pending(1) == 0

    def test_relay_without_route_drops_and_counts(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=2000.0, start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows,
                            duration=1.0)
        relay_routing = net.nodes[2].routing
        # A data frame arrives for a destination the relay cannot reach.
        packet = make_data_packet(origin=0, final_dst=99, src=0, dst=2)
        relay_routing.on_frame(packet)
        assert relay_routing.stats.data_dropped_no_route == 1

    def test_route_to_reports_none_for_unknown(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=2000.0, start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows,
                            duration=1.0)
        assert net.nodes[0].routing.route_to(42) is None


class TestMacResponseStaleness:
    def test_stale_control_response_discarded(self, triangle_placement):
        """A CTS/ACK that cannot be sent promptly is useless and dropped."""
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=2000.0, start=50.0)]
        net = build_network(triangle_placement, "DSR-Active", flows,
                            duration=1.0)
        mac = net.nodes[0].mac
        ack = __import__(
            "repro.sim.packet", fromlist=["make_control_packet"]
        ).make_control_packet(PacketKind.ACK, src=0, dst=1)
        mac._respond(ack)
        # Freeze the radio in a fake busy state: force a long transmission
        # addressed to a nonexistent peer so nobody processes it.
        net.nodes[0].phy.transmit(
            make_data_packet(origin=0, final_dst=99, src=0, dst=99,
                             payload_bytes=1400)
        )
        net.sim.run(until=0.5)
        # The response queue must be empty: either sent or discarded stale.
        assert not mac._response_queue


class TestExtractRoutesProactive:
    def test_loop_in_tables_returns_no_route(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=2000.0, start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows,
                            duration=1.0)
        # Manufacture a two-node routing loop: 0 -> 2 -> 0 -> ...
        net.nodes[0].routing._on_update(DsdvUpdate(
            sender=2, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=1.0, seqno=2),),
            full_dump=True,
        ))
        net.nodes[2].routing._on_update(DsdvUpdate(
            sender=0, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=1.0, seqno=2),),
            full_dump=True,
        ))
        routes = net.extract_routes()
        assert 0 not in routes  # transient loop detected, not returned
