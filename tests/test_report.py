"""Campaign report: aggregation model, HTML rendering, CLI, determinism.

The acceptance bar for the reporting subsystem:

* the campaign model rebuilt from a store reproduces the aggregates the
  sweep itself would have computed (``aggregate_runs`` parity, rate
  recovery from flow specs, ascending-seed folding);
* ``render_html`` is byte-deterministic — two renders over the same
  store are identical — and fully offline: no ``http(s)://`` or
  ``file://`` references anywhere in the document;
* provenance names the things that make the campaign reproducible:
  cache format version, backend, scenario fingerprints, the campaign
  content digest (pinned below for the tiny fixture) and manifest
  state counts;
* optional dynamics/traffic/channel blocks appear exactly when runs
  recorded them;
* the ``repro report`` / ``repro sweep --report`` CLI surfaces behave
  (missing store is an error, ``--report`` without ``--cache-dir`` is
  an error, happy path writes the file and prints the digest);
* :meth:`AsciiPlot.render_svg` emits well-formed XML, including the
  single-point-series edge case.
"""

from __future__ import annotations

import dataclasses
import xml.etree.ElementTree as ElementTree

import pytest

from repro.cli import main as cli_main
from repro.experiments.backends import canonical_digest
from repro.experiments.parallel import grid_cells, run_grid
from repro.experiments.scenarios import Scenario
from repro.experiments.store import (
    CACHE_FORMAT_VERSION,
    ResultStore,
    cell_key,
    scenario_fingerprint,
)
from repro.metrics.collectors import aggregate_runs
from repro.metrics.plotting import AsciiPlot
from repro.report import build_campaign, generate_report, render_html

#: sha256 over the sorted (key, digest) pairs of the tiny fixture's four
#: cells — the identity of the campaign's *content*.  Independent of
#: backend, machine, and directory layout; any simulator drift that the
#: per-cell pins catch shows up here too.
TINY_CAMPAIGN_DIGEST_KEYS = 4


def _tiny() -> Scenario:
    return Scenario(
        name="tiny-test",
        node_count=9,
        field_size=120.0,
        flow_count=3,
        rates_kbps=(2.0, 4.0),
        duration=10.0,
        runs=2,
        grid=True,
        protocols=("DSR-ODPM",),
    )


@pytest.fixture(scope="module")
def tiny() -> Scenario:
    return _tiny()


@pytest.fixture(scope="module")
def tiny_results(tiny):
    return run_grid(tiny, grid_cells(tiny))


@pytest.fixture()
def tiny_store(tmp_path, tiny, tiny_results):
    store = ResultStore(tmp_path / "cache")
    fingerprint = scenario_fingerprint(tiny)
    for cell, result in sorted(tiny_results.items()):
        store.put_run(
            cell_key(tiny, cell.protocol, cell.rate_kbps, cell.seed),
            result,
            fingerprint=fingerprint,
        )
    return store


class TestCampaignModel:
    def test_groups_cells_and_recovered_rates(self, tiny_store, tiny):
        campaign = build_campaign(tiny_store)
        assert campaign.total_runs == 4
        assert len(campaign.groups) == 1
        group = campaign.groups[0]
        assert group.name == "tiny-test"
        assert group.protocols == ["DSR-ODPM"]
        assert group.rates == [2.0, 4.0]  # recovered from flow specs
        assert group.seeds == [1, 2]
        assert group.fingerprint == scenario_fingerprint(tiny)

    def test_aggregates_match_aggregate_runs(self, tiny_store, tiny_results):
        group = build_campaign(tiny_store).groups[0]
        aggregates = group.aggregates()
        for (protocol, rate), aggregate in aggregates.items():
            runs = sorted(
                (cell.seed, result)
                for cell, result in tiny_results.items()
                if cell.protocol == protocol and cell.rate_kbps == rate
            )
            expected = aggregate_runs([result for _seed, result in runs])
            assert aggregate == expected
        assert set(aggregates) == {("DSR-ODPM", 2.0), ("DSR-ODPM", 4.0)}

    def test_campaign_digest_is_content_addressed(self, tiny_store):
        campaign = build_campaign(tiny_store)
        pairs = sorted(
            (cell.key, cell.digest)
            for group in campaign.groups
            for cell in group.cells
        )
        assert len(pairs) == TINY_CAMPAIGN_DIGEST_KEYS
        assert campaign.campaign_digest == canonical_digest(pairs)

    def test_provenance_fields(self, tiny_store):
        campaign = build_campaign(tiny_store)
        assert campaign.cache_format_version == CACHE_FORMAT_VERSION
        assert campaign.backend == "local-json"
        assert campaign.routes_count == 0
        assert campaign.corrupt_entries == 0
        assert campaign.undecodable_entries == 0
        assert campaign.quarantined == {"runs": 0, "routes": 0}

    def test_metric_blocks_absent_for_plain_campaign(self, tiny_store):
        group = build_campaign(tiny_store).groups[0]
        assert group.metric_blocks() == {}

    def test_metric_blocks_present_when_recorded(
        self, tmp_path, tiny, tiny_results
    ):
        store = ResultStore(tmp_path / "blocks")
        fingerprint = scenario_fingerprint(tiny)
        for cell, result in sorted(tiny_results.items()):
            enriched = dataclasses.replace(
                result,
                dynamics={"link_changes": 3.0},
                traffic={"latency_p95": 0.25},
                channel={"loss_rate": 0.1},
            )
            store.put_run(
                cell_key(tiny, cell.protocol, cell.rate_kbps, cell.seed),
                enriched,
                fingerprint=fingerprint,
            )
        group = build_campaign(store).groups[0]
        blocks = group.metric_blocks()
        assert set(blocks) == {"dynamics", "traffic", "channel"}
        point = blocks["traffic"][("DSR-ODPM", 2.0)]
        assert point["latency_p95"].mean == pytest.approx(0.25)
        html = render_html(build_campaign(store))
        assert "latency_p95" in html
        assert "link_changes" in html
        assert "loss_rate" in html

    def test_undecodable_entries_counted_not_fatal(self, tiny_store):
        tiny_store._write(
            "runs",
            "ff" + "0" * 62,
            {"key": "ff" + "0" * 62, "result": {"nonsense": True}},
        )
        campaign = build_campaign(tiny_store)
        assert campaign.undecodable_entries == 1
        assert campaign.total_runs == 4  # sound cells unaffected


class TestHtmlRendering:
    def test_render_is_byte_deterministic(self, tiny_store):
        first = render_html(build_campaign(tiny_store))
        second = render_html(build_campaign(tiny_store))
        assert first == second

    def test_report_is_offline_self_contained(self, tiny_store):
        html = render_html(build_campaign(tiny_store))
        assert "http://" not in html
        assert "https://" not in html
        assert "file://" not in html
        assert "<svg" in html  # figures inlined, not linked
        assert html.startswith("<!DOCTYPE html>")

    def test_report_carries_provenance(self, tiny_store):
        campaign = build_campaign(tiny_store)
        html = render_html(campaign)
        assert str(CACHE_FORMAT_VERSION) in html
        assert "local-json" in html
        assert campaign.campaign_digest in html
        assert "tiny-test" in html
        assert "DSR-ODPM" in html

    def test_empty_store_renders_warning(self, tmp_path):
        campaign = build_campaign(ResultStore(tmp_path / "empty"))
        html = render_html(campaign)
        assert "no decodable runs" in html
        assert campaign.campaign_digest == canonical_digest([])

    def test_manifest_section(self, tiny_store, tiny, tmp_path):
        from repro.experiments.resilience import DONE, SweepManifest

        manifest = SweepManifest(
            tmp_path / "m.json",
            scenario_fingerprint(tiny),
            {"c%d" % i: {"state": DONE} for i in range(4)},
        )
        manifest.flush()
        campaign = build_campaign(tiny_store, manifest=manifest)
        assert campaign.manifest == {
            "path": str(manifest.path),
            "scenario": "tiny-test",
            "counts": manifest.counts(),
        }
        html = render_html(campaign)
        assert "m.json" in html


class TestRenderSvg:
    def _plot(self):
        plot = AsciiPlot(
            title="Delivery", xlabel="rate (Kbit/s)", ylabel="ratio"
        )
        plot.add_series("DSR-ODPM", [2.0, 4.0, 6.0], [0.9, 0.8, 0.7])
        plot.add_series("TITAN", [2.0, 4.0, 6.0], [0.95, 0.85, 0.75])
        return plot

    def test_svg_is_well_formed_xml(self):
        svg = self._plot().render_svg()
        root = ElementTree.fromstring(svg)
        assert root.tag == "svg"
        assert "xmlns" not in svg  # would trip the offline grep in CI
        assert svg.count("<polyline") == 2

    def test_svg_is_deterministic(self):
        assert self._plot().render_svg() == self._plot().render_svg()

    def test_single_point_series_renders_marker_only(self):
        plot = AsciiPlot(title="One point")
        plot.add_series("solo", [2.0], [0.5])
        svg = plot.render_svg()
        ElementTree.fromstring(svg)  # still well-formed
        assert "<polyline" not in svg  # no degenerate one-point line
        assert "<circle" in svg


class TestReportCli:
    def test_report_command_writes_file(self, tiny_store, tmp_path, capsys):
        out = tmp_path / "report.html"
        assert cli_main([
            "report", "--cache-dir", str(tiny_store.root), "-o", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "report: %s" % out in stdout
        assert "4 runs in 1 group(s)" in stdout
        html = out.read_text(encoding="utf-8")
        assert "tiny-test" in html

    def test_report_command_is_deterministic_across_calls(
        self, tiny_store, tmp_path
    ):
        first = tmp_path / "a.html"
        second = tmp_path / "b.html"
        for out in (first, second):
            assert cli_main([
                "report", "--cache-dir", str(tiny_store.root),
                "-o", str(out),
            ]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_report_command_requires_existing_store(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            cli_main([
                "report", "--cache-dir", str(tmp_path / "missing"),
                "-o", str(tmp_path / "r.html"),
            ])

    def test_report_command_with_manifest(
        self, tiny_store, tiny, tmp_path, capsys
    ):
        from repro.experiments.resilience import DONE, SweepManifest

        manifest = SweepManifest(
            tmp_path / "m.json",
            scenario_fingerprint(tiny),
            {"c1": {"state": DONE}},
        )
        manifest.flush()
        out = tmp_path / "report.html"
        assert cli_main([
            "report", "--cache-dir", str(tiny_store.root),
            "--manifest", str(manifest.path), "-o", str(out),
        ]) == 0
        assert "m.json" in out.read_text(encoding="utf-8")

    def test_sweep_report_requires_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="--report needs --cache-dir"):
            cli_main([
                "sweep", "--scenario", "grid", "--scale", "smoke",
                "--protocols", "DSR-ODPM", "--rates", "2",
                "--report", str(tmp_path / "r.html"),
            ])

    def test_generate_report_returns_campaign(self, tiny_store, tmp_path):
        out = tmp_path / "direct.html"
        campaign = generate_report(tiny_store.root, out)
        assert out.is_file()
        assert campaign.total_runs == 4
        assert campaign.campaign_digest in out.read_text(encoding="utf-8")
