"""Equivalence suite pinning the spatial-hash geometry to brute force.

The cell-list candidate pass and the bucket-limited mobility repair are
*optimizations*: they must be byte-identical to the O(N^2) reference scan
— same distances, same rank order, same tie-breaks — for every position
set, including the adversarial ones (collinear lines, duplicate
distances, coordinates pinned to bucket boundaries, whole networks inside
one bucket).  This module asserts exactly that, three ways:

* :class:`TestGeometryEquivalence` — ``ChannelGeometry`` built with
  ``method="grid"`` equals ``method="bruteforce"`` (and ``"dense"``) on
  adversarial fixtures and hypothesis-random position sets;
* :class:`TestIndexedMobilityRepair` — ``update_position`` through the
  live ``_SpatialIndex`` equals a fresh freeze and the unindexed patch
  path, extending the PR 3 pattern of ``tests/test_mobility.py``;
* :class:`TestStaleGeometryWarning` — a rejected prebuilt geometry is
  *correct* (the ignore path) and now *observable* (the
  ``geometry_mismatches`` counter, surfaced as ``RunResult.warnings``).

Plus coverage for the scale-support layers that ride on the same PR: the
shared :class:`~repro.sim.state.NodeStateArrays` columns and the
streaming latency metrics large runs switch to.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy_model import NodeEnergy
from repro.core.radio import CABLETRON, MICA2
from repro.metrics.collectors import RunResult
from repro.metrics.stats import StreamingLatencies, percentile
from repro.net.topology import Placement
from repro.sim.channel import (
    _SPATIAL_HASH_MIN_NODES,
    Channel,
    ChannelGeometry,
    _SpatialIndex,
)
from repro.sim.engine import Simulator
from repro.sim.network import NetworkConfig, WirelessNetwork
from repro.sim.phy import Phy
from repro.traffic.cbr import FlowStats
from repro.traffic.flows import FlowSpec
from repro.traffic.models import TrafficSpec

RANGE = CABLETRON.max_range  # 250 m


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _assert_same_geometry(a: ChannelGeometry, b: ChannelGeometry) -> None:
    """Byte-for-byte equality of every per-node table a freeze would build."""
    assert a.order == b.order
    assert a.positions == b.positions
    assert a.max_range == b.max_range
    for node_id in a.order:
        assert a.dists[node_id] == b.dists[node_id], node_id
        assert a.dist_ranks[node_id] == b.dist_ranks[node_id], node_id
        assert a.ranks[node_id] == b.ranks[node_id], node_id
        assert a.ids[node_id] == b.ids[node_id], node_id


def _build_channel(
    positions: dict[int, tuple[float, float]],
    spatial_index: bool | None = None,
    max_range: float = RANGE,
) -> Channel:
    sim = Simulator(seed=1)
    channel = Channel(sim, positions, max_range, spatial_index=spatial_index)
    for node_id in positions:
        Phy(sim, channel, node_id, CABLETRON, NodeEnergy(card=CABLETRON))
    channel.freeze()
    return channel


def _table_snapshot(channel: Channel, node_id: int):
    table = channel._tables[node_id]
    return (
        list(table.dists),
        [(rank, phy.node_id) for rank, phy in table.by_dist],
        [phy.node_id for phy in table.full],
        list(table.ids),
        list(table.ranks),
    )


# ----------------------------------------------------------------------
# Adversarial position sets
# ----------------------------------------------------------------------


def _collinear() -> dict[int, tuple[float, float]]:
    """A line at half-range spacing: every second node exactly at range."""
    return {i: (i * (RANGE / 2.0), 0.0) for i in range(40)}


def _duplicate_distances() -> dict[int, tuple[float, float]]:
    """A 7x7 lattice: masses of equal distances exercising rank tie-breaks."""
    return {
        row * 7 + col: (col * 100.0, row * 100.0)
        for row in range(7)
        for col in range(7)
    }


def _bucket_boundaries() -> dict[int, tuple[float, float]]:
    """Coordinates pinned to exact multiples of the cell size (= range).

    Nodes sit *on* bucket edges and exactly ``max_range`` apart — the
    configuration where a naive fixed 3x3 window is most likely to be off
    by one cell.
    """
    positions = {}
    node_id = 0
    for row in range(5):
        for col in range(5):
            positions[node_id] = (col * RANGE, row * RANGE)
            node_id += 1
    # A few off-lattice nodes just inside/outside edges.
    for offset in (1e-9, -1e-9, 0.5):
        positions[node_id] = (RANGE + offset, RANGE - offset)
        node_id += 1
    return positions


def _one_bucket() -> dict[int, tuple[float, float]]:
    """Everyone inside a single cell (complete graph, all candidates)."""
    rng = random.Random(3)
    return {
        i: (rng.uniform(0, RANGE * 0.4), rng.uniform(0, RANGE * 0.4))
        for i in range(40)
    }


def _coincident() -> dict[int, tuple[float, float]]:
    """Duplicate coordinates: zero distances, ties broken purely by rank."""
    positions = {}
    for i in range(12):
        positions[i] = (100.0 * (i % 3), 50.0)
    positions[12] = (100.0, 50.0)
    positions[13] = (1e6, 1e6)  # isolated: empty table
    return positions


def _negative_coordinates() -> dict[int, tuple[float, float]]:
    """Field spanning the origin: negative bucket indices must floor right."""
    rng = random.Random(5)
    return {
        i: (rng.uniform(-700, 700), rng.uniform(-700, 700)) for i in range(60)
    }


ADVERSARIAL_SETS = {
    "collinear": _collinear,
    "duplicate-distances": _duplicate_distances,
    "bucket-boundaries": _bucket_boundaries,
    "one-bucket": _one_bucket,
    "coincident": _coincident,
    "negative-coordinates": _negative_coordinates,
}


# ----------------------------------------------------------------------
# Geometry equivalence
# ----------------------------------------------------------------------


class TestGeometryEquivalence:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_SETS))
    def test_adversarial_sets_identical(self, name):
        positions = ADVERSARIAL_SETS[name]()
        brute = ChannelGeometry.from_positions(
            positions, RANGE, method="bruteforce"
        )
        grid = ChannelGeometry.from_positions(positions, RANGE, method="grid")
        dense = ChannelGeometry.from_positions(positions, RANGE, method="dense")
        _assert_same_geometry(brute, grid)
        _assert_same_geometry(brute, dense)

    @pytest.mark.parametrize("name", sorted(ADVERSARIAL_SETS))
    def test_adversarial_sets_identical_at_sensor_range(self, name):
        """Same sets at the 68 m Mica2 range (different bucket layout)."""
        positions = ADVERSARIAL_SETS[name]()
        reach = MICA2.max_range
        brute = ChannelGeometry.from_positions(
            positions, reach, method="bruteforce"
        )
        grid = ChannelGeometry.from_positions(positions, reach, method="grid")
        _assert_same_geometry(brute, grid)

    def test_rank_tie_breaks_preserved(self):
        """Equal distances order by registration rank in every method."""
        # Four nodes equidistant from node 0, registered out of id order.
        positions = {
            7: (0.0, 0.0),
            3: (100.0, 0.0),
            9: (-100.0, 0.0),
            1: (0.0, 100.0),
            5: (0.0, -100.0),
        }
        brute = ChannelGeometry.from_positions(
            positions, RANGE, method="bruteforce"
        )
        grid = ChannelGeometry.from_positions(positions, RANGE, method="grid")
        _assert_same_geometry(brute, grid)
        # All four neighbors of node 7 sit at exactly 100 m; the by-dist
        # order must be rank order (registration order 3, 9, 1, 5).
        assert brute.dists[7] == (100.0, 100.0, 100.0, 100.0)
        assert brute.dist_ranks[7] == (1, 2, 3, 4)

    def test_exact_range_boundary_included(self):
        """A pair at exactly max_range is a link — in every method."""
        positions = {0: (0.0, 0.0), 1: (RANGE, 0.0), 2: (0.0, RANGE + 1e-9)}
        for method in ("bruteforce", "grid", "dense"):
            geometry = ChannelGeometry.from_positions(
                positions, RANGE, method=method
            )
            assert geometry.ids[0] == (1,), method
            assert geometry.dists[0] == (RANGE,), method

    @given(
        coords=st.lists(
            st.tuples(
                st.floats(0, 2000, allow_nan=False, width=32),
                st.floats(0, 2000, allow_nan=False, width=32),
            ),
            min_size=2,
            max_size=70,
        ),
        reach=st.sampled_from([68.0, 250.0, 333.7]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_sets_identical(self, coords, reach):
        positions = {i: (float(x), float(y)) for i, (x, y) in enumerate(coords)}
        brute = ChannelGeometry.from_positions(
            positions, reach, method="bruteforce"
        )
        grid = ChannelGeometry.from_positions(positions, reach, method="grid")
        _assert_same_geometry(brute, grid)

    def test_auto_uses_grid_above_crossover(self, monkeypatch):
        """`auto` must dispatch to the hash at scale (and stay identical)."""
        import repro.sim.channel as channel_module

        rng = random.Random(11)
        positions = {
            i: (rng.uniform(0, 1500), rng.uniform(0, 1500)) for i in range(96)
        }
        monkeypatch.setattr(channel_module, "_SPATIAL_HASH_MIN_NODES", 96)
        calls = []
        original = channel_module._grid_candidates

        def _spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(channel_module, "_grid_candidates", _spy)
        auto = ChannelGeometry.from_positions(positions, RANGE)
        assert calls, "auto did not dispatch to the spatial hash"
        brute = ChannelGeometry.from_positions(
            positions, RANGE, method="bruteforce"
        )
        _assert_same_geometry(brute, auto)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="candidate method"):
            ChannelGeometry.from_positions({0: (0.0, 0.0)}, RANGE, method="kd")

    def test_crossover_constant_is_sane(self):
        assert _SPATIAL_HASH_MIN_NODES > 64


# ----------------------------------------------------------------------
# Indexed mobility repair
# ----------------------------------------------------------------------


class TestIndexedMobilityRepair:
    def test_indexed_update_matches_full_refreeze(self):
        """150 indexed moves must land exactly where a fresh freeze does."""
        rng = random.Random(7)
        count = 20
        positions = {
            i: (rng.uniform(0, 300), rng.uniform(0, 300)) for i in range(count)
        }
        channel = _build_channel(positions, spatial_index=True)
        live = dict(positions)
        for _ in range(150):
            mover = rng.randrange(count)
            target = (rng.uniform(0, 300), rng.uniform(0, 300))
            live[mover] = target
            channel.update_position(mover, target)
        reference = _build_channel(live)
        for node_id in range(count):
            assert _table_snapshot(channel, node_id) == _table_snapshot(
                reference, node_id
            )

    def test_indexed_equals_unindexed_patching(self):
        """Same move sequence, index on vs off: same tables, same counters."""
        rng = random.Random(19)
        count = 30
        positions = {
            i: (rng.uniform(0, 900), rng.uniform(0, 900)) for i in range(count)
        }
        indexed = _build_channel(dict(positions), spatial_index=True)
        plain = _build_channel(dict(positions), spatial_index=False)
        for _ in range(200):
            mover = rng.randrange(count)
            target = (rng.uniform(0, 900), rng.uniform(0, 900))
            indexed.update_position(mover, target)
            plain.update_position(mover, target)
        assert indexed.link_changes == plain.link_changes
        assert indexed.position_updates == plain.position_updates
        for node_id in range(count):
            assert _table_snapshot(indexed, node_id) == _table_snapshot(
                plain, node_id
            )

    def test_cross_bucket_and_boundary_moves(self):
        """Jumps across many cells and landings on exact cell edges."""
        positions = {
            0: (10.0, 10.0),
            1: (20.0, 10.0),
            2: (RANGE * 3, RANGE * 3),
            3: (RANGE * 3 + 5.0, RANGE * 3),
        }
        channel = _build_channel(positions, spatial_index=True)
        script = [
            (0, (RANGE * 3 + 10.0, RANGE * 3)),  # far jump into the cluster
            (2, (RANGE, RANGE)),                 # land exactly on a cell corner
            (0, (10.0, 10.0)),                   # jump back
            (3, (RANGE * 2, RANGE * 3)),         # exactly range from (RANGE*3, …)? no: repositioned 2
        ]
        live = dict(positions)
        for mover, target in script:
            live[mover] = target
            channel.update_position(mover, target)
            reference = _build_channel(dict(live))
            for node_id in positions:
                assert _table_snapshot(channel, node_id) == _table_snapshot(
                    reference, node_id
                ), (mover, target)

    def test_distance_cache_refreshes_after_indexed_move(self):
        channel = _build_channel(
            {0: (0.0, 0.0), 1: (100.0, 0.0)}, spatial_index=True
        )
        assert channel.distance(0, 1) == pytest.approx(100.0)
        channel.update_position(1, (0.0, 40.0))
        assert channel.distance(0, 1) == pytest.approx(40.0)

    def test_link_changes_counted_once_per_link_indexed(self):
        channel = _build_channel(
            {0: (0.0, 0.0), 1: (100.0, 0.0)}, spatial_index=True
        )
        far = channel.max_range * 10
        channel.update_position(1, (far, far))
        assert channel.link_changes == 1
        assert channel.neighbors(0) == []
        channel.update_position(1, (50.0, 0.0))
        assert channel.link_changes == 2
        assert channel.neighbors(0) == [1]

    def test_update_before_freeze_with_index_forced(self):
        sim = Simulator(seed=1)
        channel = Channel(
            sim,
            {0: (0.0, 0.0), 1: (100.0, 0.0)},
            RANGE,
            spatial_index=True,
        )
        Phy(sim, channel, 0, CABLETRON, NodeEnergy(card=CABLETRON))
        Phy(sim, channel, 1, CABLETRON, NodeEnergy(card=CABLETRON))
        channel.update_position(1, (50.0, 0.0))  # not frozen yet
        assert channel.neighbors(0) == [1]
        assert channel._tables[0].dists == [50.0]

    def test_index_rebuilt_after_late_registration(self):
        """register() unfreezes; the next freeze re-bins everyone."""
        sim = Simulator(seed=1)
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (200.0, 0.0)}
        channel = Channel(sim, positions, RANGE, spatial_index=True)
        Phy(sim, channel, 0, CABLETRON, NodeEnergy(card=CABLETRON))
        Phy(sim, channel, 1, CABLETRON, NodeEnergy(card=CABLETRON))
        channel.freeze()
        Phy(sim, channel, 2, CABLETRON, NodeEnergy(card=CABLETRON))
        channel.update_position(2, (150.0, 0.0))
        assert sorted(channel.neighbors(0)) == [1, 2]
        reference = _build_channel(
            {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (150.0, 0.0)}
        )
        for node_id in positions:
            assert _table_snapshot(channel, node_id) == _table_snapshot(
                reference, node_id
            )

    def test_spatial_index_near_is_superset_of_range(self):
        rng = random.Random(23)
        positions = {
            i: (rng.uniform(0, 2000), rng.uniform(0, 2000)) for i in range(200)
        }
        index = _SpatialIndex(positions, RANGE)
        for probe in list(positions.values())[:20]:
            near = set(index.near((probe,)))
            for node_id, (x, y) in positions.items():
                if math.hypot(x - probe[0], y - probe[1]) <= RANGE:
                    assert node_id in near


# ----------------------------------------------------------------------
# Shared node-state arrays
# ----------------------------------------------------------------------


class TestNodeStateArrays:
    def test_positions_write_through(self):
        positions = {3: (10.0, 20.0), 8: (30.0, 40.0)}
        channel = _build_channel(dict(positions))
        assert channel.state.position(8) == (30.0, 40.0)
        channel.update_position(8, (99.0, 98.0))
        assert channel.state.position(8) == (99.0, 98.0)
        assert channel.positions[8] == (99.0, 98.0)
        assert list(channel.state.ids) == [3, 8]

    def test_capture_snapshots_energy_and_radio_state(self):
        sim = Simulator(seed=1)
        positions = {0: (0.0, 0.0), 1: (50.0, 0.0)}
        channel = Channel(sim, positions, RANGE)
        ledgers = {i: NodeEnergy(card=CABLETRON) for i in positions}
        phys = {
            i: Phy(sim, channel, i, CABLETRON, ledgers[i]) for i in positions
        }
        channel.freeze()
        ledgers[1].charge_idle(2.0)
        phys[0]._state_since = 42.0
        channel.state.capture(ledgers=ledgers, phys=phys.values())
        row0 = channel.state.index_of[0]
        row1 = channel.state.index_of[1]
        assert channel.state.state_since[row0] == 42.0
        assert channel.state.energy_total[row1] == pytest.approx(
            ledgers[1].total
        )
        summary = channel.state.summary()
        assert summary["nodes"] == 2.0
        assert summary["energy_total"] == pytest.approx(
            ledgers[0].total + ledgers[1].total
        )


# ----------------------------------------------------------------------
# Stale-geometry observability
# ----------------------------------------------------------------------


def _tiny_config(protocol: str = "DSR-Active") -> NetworkConfig:
    positions = {
        0: (0.0, 0.0),
        1: (150.0, 0.0),
        2: (300.0, 0.0),
    }
    placement = Placement(positions=positions, width=300.0, height=300.0)
    return NetworkConfig(
        placement=placement,
        card=CABLETRON,
        protocol=protocol,
        flows=[
            FlowSpec(
                flow_id=0,
                source=0,
                destination=2,
                rate_bps=2000.0,
                start=1.0,
                traffic=TrafficSpec("poisson"),
            )
        ],
        duration=5.0,
        seed=1,
    )


class TestStaleGeometryWarning:
    def test_mismatched_geometry_is_ignored_but_counted(self):
        """The ignore path stays correct — and is no longer silent."""
        sim = Simulator(seed=1)
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0)}
        stale = ChannelGeometry.from_positions(
            {0: (0.0, 0.0), 1: (120.0, 0.0)}, RANGE
        )
        channel = Channel(sim, positions, RANGE, geometry=stale)
        for node_id in positions:
            Phy(sim, channel, node_id, CABLETRON, NodeEnergy(card=CABLETRON))
        channel.freeze()
        assert channel.geometry_mismatches == 1
        # Tables reflect the channel's real positions, not the stale ones.
        assert channel._tables[0].dists == [100.0]

    def test_valid_geometry_not_counted(self):
        sim = Simulator(seed=1)
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0)}
        geometry = ChannelGeometry.from_positions(positions, RANGE)
        channel = Channel(sim, positions, RANGE, geometry=geometry)
        for node_id in positions:
            Phy(sim, channel, node_id, CABLETRON, NodeEnergy(card=CABLETRON))
        channel.freeze()
        assert channel.geometry_mismatches == 0

    def test_run_surfaces_stale_geometry_warning(self):
        config = _tiny_config()
        stale = ChannelGeometry.from_positions(
            {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 0.0)}, CABLETRON.max_range
        )
        result = WirelessNetwork(config, geometry=stale).run()
        assert result.warnings == {"stale_geometry": 1.0}
        payload = result.to_payload()
        assert payload["warnings"] == {"stale_geometry": 1.0}
        # Round-trips through the cache payload format.
        assert RunResult.from_payload(payload).warnings == result.warnings

    def test_clean_run_emits_no_warnings_key(self):
        """The common case keeps payload bytes identical to old builds."""
        result = WirelessNetwork(_tiny_config()).run()
        assert result.warnings is None
        assert "warnings" not in result.to_payload()

    def test_clean_run_and_stale_geometry_run_agree_on_results(self):
        """A rejected geometry may cost time but never changes the run."""
        clean = WirelessNetwork(_tiny_config()).run()
        stale = ChannelGeometry.from_positions(
            {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (2.0, 0.0)}, CABLETRON.max_range
        )
        warned = WirelessNetwork(_tiny_config(), geometry=stale).run()
        clean_payload = clean.to_payload()
        warned_payload = warned.to_payload()
        warned_payload.pop("warnings")
        assert clean_payload == warned_payload


# ----------------------------------------------------------------------
# Streaming metrics (the O(N)-memory path large runs switch to)
# ----------------------------------------------------------------------


class TestStreamingMetrics:
    def test_percentiles_track_exact_within_bin_width(self):
        rng = random.Random(13)
        stream = StreamingLatencies()
        values = []
        for _ in range(20000):
            value = rng.expovariate(5.0)
            stream.add(value)
            values.append(value)
        values.sort()
        for quantile in (0.5, 0.9, 0.95, 0.99):
            exact = percentile(values, quantile)
            estimate = stream.percentile(quantile)
            assert abs(estimate - exact) / exact < 0.035, quantile
        assert stream.count == 20000
        assert stream.mean == pytest.approx(sum(values) / len(values))

    def test_estimates_clamped_to_observed_range(self):
        stream = StreamingLatencies()
        stream.add(0.25)
        for quantile in (0.0, 0.5, 1.0):
            assert stream.percentile(quantile) == 0.25

    def test_streaming_jitter_equals_list_jitter(self):
        rng = random.Random(17)
        latencies = [rng.uniform(0.01, 0.5) for _ in range(500)]
        recorded = FlowStats(
            spec=FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0)
        )
        streamed = FlowStats(
            spec=FlowSpec(flow_id=1, source=0, destination=1, rate_bps=1000.0)
        )
        for latency in latencies:
            recorded.latencies.append(latency)
            streamed.observe_latency(latency)
        assert streamed.jitter == recorded.jitter  # identical float ops

    def test_network_gate_switches_to_streaming(self, monkeypatch):
        """Above the node threshold, sinks stream instead of recording."""
        import repro.sim.network as network_module

        monkeypatch.setattr(network_module, "_STREAM_METRICS_MIN_NODES", 3)
        network = WirelessNetwork(_tiny_config())
        assert network._latency_stream is not None
        result = network.run()
        assert result.traffic is not None
        assert all(not stats.latencies for stats in network.flow_stats)
        # The exact path on the same config, for comparison.
        monkeypatch.setattr(network_module, "_STREAM_METRICS_MIN_NODES", 10**9)
        exact_net = WirelessNetwork(_tiny_config())
        assert exact_net._latency_stream is None
        exact = exact_net.run()
        assert exact.traffic is not None
        # Byte counters are exact on both paths; percentiles agree to the
        # histogram's bin resolution (both runs are deterministic twins).
        assert result.traffic["offered_bytes"] == exact.traffic["offered_bytes"]
        assert result.traffic["received_bytes"] == (
            exact.traffic["received_bytes"]
        )
        if exact.traffic["latency_p50"] > 0:
            assert result.traffic["latency_p50"] == pytest.approx(
                exact.traffic["latency_p50"], rel=0.05
            )
        assert result.traffic["jitter"] == pytest.approx(
            exact.traffic["jitter"]
        )
