"""Smoke tests: every example script runs to completion and says something.

Examples are user-facing deliverables; these tests keep them working as the
library evolves.  Each is executed in-process (fast, importable) with its
stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "characteristic_hop_count.py",
    "steiner_design.py",
    "custom_protocol.py",
    "lifetime_analysis.py",
    "parallel_sweep.py",
    "mobile_sweep.py",
    "traffic_mix.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, "example %s produced no meaningful output" % script


def test_quickstart_reports_all_protocols(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for protocol in ("TITAN-PC", "DSR-ODPM", "DSR-Active"):
        assert protocol in out


def test_hop_count_example_names_threshold(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "characteristic_hop_count.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "crosses m_opt = 2" in out
    assert "FCC" in out


def test_custom_protocol_example_cleans_registry():
    """The example registers LIFETIME-ODPM; re-running must not crash."""
    from repro.sim.network import PROTOCOLS

    runpy.run_path(str(EXAMPLES_DIR / "custom_protocol.py"), run_name="__main__")
    assert "LIFETIME-ODPM" in PROTOCOLS
    # Idempotent re-registration (the example overwrites its own preset).
    runpy.run_path(str(EXAMPLES_DIR / "custom_protocol.py"), run_name="__main__")


def test_protocol_shootout_exists_and_importable():
    """The shootout takes minutes; verify structure without running main."""
    path = EXAMPLES_DIR / "protocol_shootout.py"
    assert path.exists()
    module_vars = runpy.run_path(str(path), run_name="not_main")
    assert "simulated_low_rate" in module_vars
    assert "frozen_high_rates" in module_vars
    assert len(module_vars["PROTOCOLS"]) == 6
