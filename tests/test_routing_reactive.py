"""Tests for the reactive routing family (DSR, MTPR, DSRH, TITAN)."""

import pytest

from repro.core.radio import CABLETRON, HYPOTHETICAL_CABLETRON, PowerMode
from repro.net.topology import Placement
from repro.routing.reactive import RouteError, RouteRequest, SourceRoute
from repro.sim.network import NetworkConfig, WirelessNetwork
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network, line_flow


@pytest.fixture
def line_placement():
    positions = {i: (150.0 * i, 0.0) for i in range(5)}
    return Placement(positions, width=600.0, height=1.0)


def run_line(protocol, placement, duration=30.0, rate=4000.0, **kwargs):
    net = build_network(
        placement, protocol, [line_flow(rate_bps=rate)], duration=duration, **kwargs
    )
    result = net.run()
    return net, result


class TestDsrDiscovery:
    def test_multi_hop_delivery(self, line_placement):
        """0 -> 4 is 600 m: at least 3 hops at 250 m range."""
        net, result = run_line("DSR-Active", line_placement)
        assert result.delivery_ratio > 0.95
        assert result.flows[0].received > 50

    def test_route_is_minimal_hop_count(self, line_placement):
        net, result = run_line("DSR-Active", line_placement)
        routes = net.extract_routes()
        assert 0 in routes
        # 150 m spacing at 250 m range: only adjacent nodes are connected,
        # so the (unique) minimal route is the 4-hop chain.
        assert routes[0] == (0, 1, 2, 3, 4)

    def test_route_cached_at_source(self, line_placement):
        net, _ = run_line("DSR-Active", line_placement)
        cache = net.nodes[0].routing.cache
        cached = cache.get(4)
        assert cached is not None
        assert cached.path[0] == 0 and cached.path[-1] == 4

    def test_discovery_under_psm(self, line_placement):
        """Route discovery must survive power-save mode (flood gating)."""
        net, result = run_line("DSR-ODPM", line_placement, duration=40.0)
        assert result.delivery_ratio > 0.9

    def test_relays_become_active_under_odpm(self, line_placement):
        net, _ = run_line("DSR-ODPM", line_placement, duration=15.0)
        routes = net.extract_routes()
        for relay in routes[0][1:-1]:
            assert net.nodes[relay].power.mode is PowerMode.ACTIVE


class TestCostBasedDiscovery:
    @pytest.fixture
    def detour_placement(self):
        """A direct long link (0-1: 240 m) vs a two-hop detour (0-2-1,
        120 m each).  MTPR must take the detour; DSR must go direct."""
        positions = {0: (0.0, 0.0), 1: (240.0, 0.0), 2: (120.0, 1.0)}
        return Placement(positions, width=240.0, height=2.0)

    def flow(self):
        return FlowSpec(flow_id=0, source=0, destination=1, rate_bps=4000.0,
                        start=1.0)

    def test_dsr_goes_direct(self, detour_placement):
        net = build_network(
            detour_placement, "DSR-Active", [self.flow()], duration=10.0
        )
        net.run()
        assert net.extract_routes()[0] == (0, 1)

    def test_mtpr_takes_short_hops(self, detour_placement):
        """Eq. 10: 2 * (120 m)^4 << (240 m)^4."""
        net = build_network(
            detour_placement, "MTPR-ODPM", [self.flow()], duration=10.0
        )
        net.run()
        assert net.extract_routes()[0] == (0, 2, 1)

    def test_mtpr_plus_with_real_card_stays_direct(self, detour_placement):
        """Eq. 11 on Cabletron: fixed costs dwarf the quartic saving, so the
        direct route wins — the §5.1 story at the routing level."""
        net = build_network(
            detour_placement, "MTPR+-ODPM", [self.flow()], duration=10.0
        )
        net.run()
        assert net.extract_routes()[0] == (0, 1)

    def test_mtpr_plus_with_hypothetical_card_takes_detour(self, detour_placement):
        """With alpha2 = 5.2e-6 the quartic term dominates even Eq. 11."""
        net = build_network(
            detour_placement,
            "MTPR+-ODPM",
            [self.flow()],
            duration=10.0,
            card=HYPOTHETICAL_CABLETRON,
        )
        net.run()
        assert net.extract_routes()[0] == (0, 2, 1)


class TestDsrhBehaviour:
    @pytest.fixture
    def backbone_placement(self):
        """Direct path through a (sleeping) relay vs detour through nodes
        that will be active.  Node 2 is the short-path relay; nodes 3, 4
        relay a pre-existing flow so they are already awake."""
        positions = {
            0: (0.0, 0.0),
            1: (400.0, 0.0),
            2: (200.0, 0.0),     # short-path relay, asleep
            3: (130.0, 100.0),   # active backbone
            4: (270.0, 100.0),
            5: (130.0, 220.0),   # endpoints of the backbone flow
            6: (270.0, 220.0),
        }
        return Placement(positions, width=400.0, height=220.0)

    def test_dsrh_rate_header_reaches_cost(self, backbone_placement):
        flows = [
            FlowSpec(flow_id=0, source=0, destination=1, rate_bps=2000.0, start=5.0),
        ]
        net = build_network(
            backbone_placement, "DSRH-ODPM(rate)", flows, duration=15.0
        )
        net.run()
        routing = net.nodes[0].routing
        assert routing.flow_rates[0] == 2000.0

    def test_delivery_with_joint_cost(self, backbone_placement):
        flows = [
            FlowSpec(flow_id=0, source=0, destination=1, rate_bps=4000.0, start=2.0),
        ]
        for protocol in ("DSRH-ODPM(rate)", "DSRH-ODPM(norate)"):
            net = build_network(
                backbone_placement, protocol, flows, duration=20.0
            )
            result = net.run()
            assert result.delivery_ratio > 0.9, protocol


class TestRouteErrorHandling:
    def test_link_failure_invalidates_cache_and_sends_rerr(self, line_placement):
        net, _ = run_line("DSR-Active", line_placement, duration=10.0)
        source_routing = net.nodes[0].routing
        relay_routing = net.nodes[1].routing  # determined by line topology
        routes = net.extract_routes()
        path = routes[0]
        relay = path[1]
        relay_routing = net.nodes[relay].routing
        # Simulate MAC retry exhaustion at the first relay for a data frame.
        packet = __import__(
            "repro.sim.packet", fromlist=["make_data_packet"]
        ).make_data_packet(origin=0, final_dst=4, src=relay, dst=path[2])
        packet.payload = SourceRoute(path=path, index=1)
        before = relay_routing.stats.rerr_sent
        relay_routing.on_link_failure(path[2], packet)
        assert relay_routing.stats.rerr_sent == before + 1
        assert relay_routing.cache.get(4) is None

    def test_rerr_purges_upstream_caches(self, line_placement):
        net, _ = run_line("DSR-Active", line_placement, duration=10.0)
        source_routing = net.nodes[0].routing
        assert source_routing.cache.get(4) is not None
        error = RouteError(origin=0, broken_from=1, broken_to=2, path=(0, 1, 2, 3, 4))
        source_routing._on_rerr(error)
        assert source_routing.cache.get(4) is None


class TestTitan:
    def make_titan_network(self, placement=None):
        placement = placement or Placement(
            {i: (100.0 * i, 0.0) for i in range(4)}, width=300.0, height=1.0
        )
        flows = [
            FlowSpec(flow_id=0, source=0, destination=3, rate_bps=4000.0, start=1.0)
        ]
        return build_network(placement, "TITAN-PC", flows, duration=20.0)

    def test_active_nodes_always_participate(self):
        net = self.make_titan_network()
        titan = net.nodes[1].routing
        net.nodes[1].power.notify_data_activity()  # force AM
        assert titan.participation_probability() == 1.0

    def test_psm_node_participation_shrinks_with_active_neighbors(self):
        net = self.make_titan_network()
        titan = net.nodes[1].routing
        assert net.nodes[1].power.mode is PowerMode.POWER_SAVE
        p_no_backbone = titan.participation_probability()
        # Wake both neighbors: participation should drop.
        net.nodes[0].power.notify_data_activity()
        net.nodes[2].power.notify_data_activity()
        p_backbone = titan.participation_probability()
        assert p_backbone < p_no_backbone
        assert p_backbone >= titan.min_participation

    def test_delivery_end_to_end(self):
        net = self.make_titan_network()
        result = net.run()
        assert result.delivery_ratio > 0.9

    def test_suppression_counter(self):
        """With a full active neighborhood, PSM nodes suppress floods."""
        net = self.make_titan_network()
        titan = net.nodes[1].routing
        for node_id in (0, 2):
            net.nodes[node_id].power.notify_data_activity()
        request = RouteRequest(origin=0, target=3, request_id=99, path=(0,), cost=0)
        suppressed_before = titan.suppressed_rreqs
        for _ in range(200):
            titan.participates_in_discovery(request)
        assert titan.suppressed_rreqs > suppressed_before

    def test_parameter_validation(self):
        net = self.make_titan_network()
        from repro.routing.titan import Titan

        with pytest.raises(ValueError):
            Titan(net.nodes[0], min_participation=1.5)
        with pytest.raises(ValueError):
            Titan(net.nodes[0], bias=-1.0)
