"""Tests for the §3 problem formalization and worst-case constructions."""

import pytest

from repro.core.design_problem import (
    Demand,
    DesignInstance,
    Solution,
    SteinerForestExample,
    SteinerTreeExample,
)


class TestDemand:
    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Demand(1, 1)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            Demand(1, 2, rate=-1.0)


class TestSteinerTreeExample:
    """Figs. 1–3 and Eqs. 6–7."""

    @pytest.mark.parametrize("k", [1, 2, 5, 10, 50])
    def test_eq6_matches_transmission_count(self, k):
        """E_ST1 = t_idle z + k(k+3)/2 t_data (alpha+1) z."""
        example = SteinerTreeExample(k=k, alpha=2.0, z=3.0)
        expected = 1 * 3.0 + k * (k + 3) / 2 * (2.0 + 1) * 3.0
        assert example.st1_energy() == pytest.approx(expected)

    @pytest.mark.parametrize("k", [1, 2, 5, 10, 50])
    def test_eq7_matches_transmission_count(self, k):
        example = SteinerTreeExample(k=k, alpha=2.0, z=3.0)
        expected = 1 * 3.0 + 2 * k * (2.0 + 1) * 3.0
        assert example.st2_energy() == pytest.approx(expected)

    def test_deviation_grows_with_k(self):
        """The communication deviation is (k+3)/4, unbounded in k."""
        ratios = [SteinerTreeExample(k=k).deviation_ratio() for k in (1, 5, 20)]
        assert ratios == sorted(ratios)
        assert SteinerTreeExample(k=5).deviation_ratio() == pytest.approx(2.0)

    def test_st2_never_worse(self):
        for k in range(1, 30):
            example = SteinerTreeExample(k=k)
            assert example.st2_energy() <= example.st1_energy()

    def test_equal_idle_cost_between_trees(self):
        """Both trees keep exactly one relay awake (the 1 * t_idle term)."""
        example = SteinerTreeExample(k=7)
        idle1 = example.st1_energy() - (
            example.k * (example.k + 3) / 2 * (example.alpha + 1) * example.z
        )
        idle2 = example.st2_energy() - (2 * example.k * (example.alpha + 1) * example.z)
        assert idle1 == pytest.approx(idle2)

    def test_instance_st2_solution_matches_eq7(self):
        """Evaluating the star route set on the instance reproduces Eq. 7."""
        example = SteinerTreeExample(k=4)
        instance = example.instance()
        solution = Solution(
            {
                demand: (demand.source, example.relay_j, example.sink)
                for demand in instance.demands
            }
        )
        assert instance.evaluate(solution) == pytest.approx(example.st2_energy())

    def test_instance_st1_solution_matches_eq6(self):
        """Evaluating the chain route set reproduces Eq. 6."""
        example = SteinerTreeExample(k=4)
        instance = example.instance()
        paths = {}
        for demand in instance.demands:
            source = demand.source
            chain = tuple(range(source, 0, -1))  # source, source-1, ..., 1
            paths[demand] = chain + (example.relay_i, example.sink)
        assert instance.evaluate(Solution(paths)) == pytest.approx(
            example.st1_energy()
        )

    def test_brute_force_prefers_st2(self):
        example = SteinerTreeExample(k=3)
        instance = example.instance()
        _, cost = instance.brute_force_optimum(max_path_length=4)
        assert cost == pytest.approx(example.st2_energy())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SteinerTreeExample(k=0)


class TestSteinerForestExample:
    """Figs. 4–6 and Eqs. 8–9."""

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_eq8(self, k):
        example = SteinerForestExample(k=k, alpha=1.5, z=2.0)
        expected = k * 2.0 + 2 * k * (1.5 + 1) * 2.0
        assert example.sf1_energy() == pytest.approx(expected)

    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_eq9(self, k):
        example = SteinerForestExample(k=k, alpha=1.5, z=2.0)
        expected = 1 * 2.0 + 2 * k * (1.5 + 1) * 2.0
        assert example.sf2_energy() == pytest.approx(expected)

    def test_same_communication_cost(self):
        """SF1 and SF2 differ only in relay idling."""
        example = SteinerForestExample(k=6)
        assert example.sf1_energy() - example.sf2_energy() == pytest.approx(
            (example.k - 1) * example.t_idle * example.z
        )

    def test_endpoint_inclusive_ratio_bounded_by_3_over_2(self):
        """3k/(2k+1) -> 3/2: the constant the paper derives."""
        ratios = [
            SteinerForestExample(k=k).endpoint_inclusive_ratio()
            for k in (1, 10, 1000)
        ]
        assert all(r < 1.5 for r in ratios)
        assert ratios[-1] == pytest.approx(1.5, abs=0.01)

    def test_solutions_evaluate_to_equations(self):
        example = SteinerForestExample(k=4)
        instance = example.instance()
        assert instance.evaluate(example.sf1_solution()) == pytest.approx(
            example.sf1_energy()
        )
        assert instance.evaluate(example.sf2_solution()) == pytest.approx(
            example.sf2_energy()
        )

    def test_brute_force_prefers_sf2(self):
        example = SteinerForestExample(k=3)
        instance = example.instance()
        _, cost = instance.brute_force_optimum(max_path_length=2)
        assert cost == pytest.approx(example.sf2_energy())


class TestDesignInstance:
    @pytest.fixture
    def small_instance(self):
        example = SteinerForestExample(k=2)
        return example, example.instance()

    def test_endpoint_costs_are_zero(self, small_instance):
        """Definition 1: c(s_i) = c(d_i) = 0."""
        example, instance = small_instance
        assert instance.node_cost(example.source(1)) == 0.0
        assert instance.node_cost(example.destination(1)) == 0.0
        assert instance.node_cost(example.center) > 0.0

    def test_validate_rejects_missing_path(self, small_instance):
        _, instance = small_instance
        with pytest.raises(ValueError, match="no path"):
            instance.evaluate(Solution({}))

    def test_validate_rejects_wrong_endpoints(self, small_instance):
        example, instance = small_instance
        demand = instance.demands[0]
        bad = Solution({d: (d.source, example.center, d.destination)
                        for d in instance.demands})
        bad.paths[demand] = (example.center, demand.destination)
        with pytest.raises(ValueError, match="does not connect"):
            instance.evaluate(bad)

    def test_validate_rejects_nonexistent_edge(self, small_instance):
        example, instance = small_instance
        demand = instance.demands[0]
        solution = example.sf2_solution()
        solution.paths[demand] = (demand.source, demand.destination)
        with pytest.raises(ValueError, match="not in graph"):
            instance.evaluate(solution)

    def test_rate_weighting(self):
        """Data cost scales with the demand rate."""
        example = SteinerForestExample(k=1)
        graph = example.graph()
        heavy = DesignInstance(
            graph, [Demand(example.source(1), example.destination(1), rate=3.0)]
        )
        light = DesignInstance(
            graph, [Demand(example.source(1), example.destination(1), rate=1.0)]
        )
        path = (example.source(1), example.center, example.destination(1))
        heavy_cost = heavy.evaluate(Solution({heavy.demands[0]: path}))
        light_cost = light.evaluate(Solution({light.demands[0]: path}))
        data_light = light_cost - 1.0  # one idle unit for the center
        assert heavy_cost == pytest.approx(1.0 + 3.0 * data_light)

    def test_solution_relays(self):
        example = SteinerForestExample(k=2)
        solution = example.sf2_solution()
        assert solution.relays() == {example.center}
