"""Tests for failure injection and the Span coordinator power manager."""

import pytest

from repro.core.radio import CABLETRON, PowerMode, RadioState
from repro.net.topology import Placement
from repro.power.span import SpanCoordinator
from repro.sim.packet import make_data_packet
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


@pytest.fixture
def diamond_placement():
    """Source 0, destination 3, two disjoint relays 1 and 2."""
    positions = {
        0: (0.0, 100.0),
        1: (200.0, 200.0),
        2: (200.0, 0.0),
        3: (400.0, 100.0),
    }
    return Placement(positions, width=400.0, height=200.0)


def diamond_flow():
    return [FlowSpec(flow_id=0, source=0, destination=3,
                     rate_bps=4000.0, start=1.0)]


class TestPhyFailure:
    def test_failed_radio_sleeps_forever(self, diamond_placement):
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=5.0)
        phy = net.nodes[1].phy
        phy.fail()
        assert phy.failed
        assert phy.state is RadioState.SLEEP
        phy.wake()
        assert phy.state is RadioState.SLEEP  # stays dead

    def test_failed_radio_rejects_transmit(self, diamond_placement):
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=5.0)
        net.nodes[1].phy.fail()
        with pytest.raises(RuntimeError, match="failed"):
            net.nodes[1].phy.transmit(
                make_data_packet(origin=1, final_dst=3, src=1, dst=3)
            )

    def test_failure_mid_transmission_completes_frame(self, diamond_placement):
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=5.0)
        phy = net.nodes[0].phy
        received = []
        net.nodes[1].phy.on_receive = lambda p: received.append(p.uid)
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        phy.transmit(frame)
        phy.fail()
        net.sim.run(until=1.0)
        # The frame already on the air is delivered; afterwards, asleep.
        assert received == [frame.uid]
        assert phy.state is RadioState.SLEEP

    def test_failed_node_draws_sleep_power(self, diamond_placement):
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=20.0)
        net.nodes[2].fail()
        net.run()
        ledger = net.nodes[2].phy.energy
        assert ledger.sleep > 0
        # A dead node never idles again after the failure instant.
        assert ledger.state_time[RadioState.SLEEP] > 19.0


class TestRouteRepair:
    def test_dsr_reroutes_around_failed_relay(self, diamond_placement):
        """Kill the active relay mid-flow: DSR must repair via the other."""
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=40.0)
        killed = {}

        def kill_current_relay():
            routes = net.extract_routes()
            relay = routes[0][1]
            killed["relay"] = relay
            net.nodes[relay].fail()

        net.sim.schedule_at(10.0, kill_current_relay)
        result = net.run()
        routes_after = net.extract_routes()
        assert killed["relay"] not in routes_after[0]
        # A handful of packets die during repair; the rest get through.
        assert result.delivery_ratio > 0.85

    def test_rerr_statistics_fire_on_failure(self, diamond_placement):
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=40.0)

        def kill():
            relay = net.extract_routes()[0][1]
            net.nodes[relay].fail()

        net.sim.schedule_at(10.0, kill)
        net.run()
        drops = sum(
            n.routing.stats.data_dropped_link_failure
            for n in net.nodes.values()
        )
        assert drops >= 1  # the packet that hit the dead relay

    def test_endpoint_failure_stops_flow_without_crash(self, diamond_placement):
        net = build_network(diamond_placement, "DSR-Active", diamond_flow(),
                            duration=30.0)
        net.sim.schedule_at(10.0, net.nodes[3].fail)
        result = net.run()
        # Deliveries happened before the failure, none after; no exception.
        assert 0.1 < result.delivery_ratio < 0.9


class TestSpanCoordinator:
    @pytest.fixture
    def chain_net(self):
        """A 3-node chain where the middle node is essential coverage."""
        placement = Placement(
            {0: (0.0, 0.0), 1: (200.0, 0.0), 2: (400.0, 0.0)},
            width=400.0, height=1.0,
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=2,
                          rate_bps=2000.0, start=8.0)]
        return build_network(placement, "DSR-Span", flows, duration=30.0)

    def test_essential_node_elects_itself(self, chain_net):
        chain_net.run()
        middle = chain_net.nodes[1].power
        assert isinstance(middle, SpanCoordinator)
        assert middle.elections >= 1
        assert middle.mode is PowerMode.ACTIVE

    def test_leaf_nodes_need_not_coordinate(self, chain_net):
        chain_net.run()
        # Endpoints have at most one neighbor pair, already covered.
        assert chain_net.nodes[0].power.coverage_needed() is False

    def test_traffic_flows_over_span_backbone(self, chain_net):
        result = chain_net.run()
        assert result.delivery_ratio > 0.85

    def test_redundant_coordinator_withdraws(self):
        """In a clique, nobody needs to coordinate."""
        placement = Placement(
            {0: (0.0, 0.0), 1: (50.0, 0.0), 2: (25.0, 40.0)},
            width=50.0, height=40.0,
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=2000.0, start=5.0)]
        net = build_network(placement, "DSR-Span", flows, duration=30.0)
        net.run()
        for node in net.nodes.values():
            assert node.power.coverage_needed() is False
            assert node.power.elections == 0

    def test_span_saves_energy_vs_always_on(self):
        """Span's whole point: sleepers save idling energy."""
        placement = Placement(
            {i: (150.0 * i, 0.0) for i in range(5)}, width=600.0, height=1.0
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=4,
                          rate_bps=2000.0, start=5.0)]
        span = build_network(placement, "DSR-Span", flows, duration=40.0)
        span_result = span.run()
        active = build_network(placement, "DSR-Active", flows, duration=40.0)
        active_result = active.run()
        # The chain needs every relay, so Span keeps them all awake here —
        # energy parity with always-on is the expected floor.
        assert span_result.e_network <= active_result.e_network * 1.05
        assert span_result.delivery_ratio > 0.85
