"""Edge-case coverage for the statistics helpers.

The percentile helpers sit under every latency figure; their degenerate
inputs (no deliveries, a single delivery, a constant latency) are exactly
the cases lossy channels now produce routinely, so they get explicit
pins here.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    StreamingLatencies,
    mean_ci,
    percentile,
    summarize,
)


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 1.0) == 0.0

    def test_single_sample_returns_the_value(self):
        for quantile in (0.0, 0.37, 0.5, 0.99, 1.0):
            assert percentile([0.125], quantile) == 0.125

    def test_all_equal_returns_the_value(self):
        assert percentile([2.5] * 7, 0.5) == 2.5
        assert percentile([2.5] * 7, 0.9) == 2.5

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], -0.01)
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], 1.01)

    def test_linear_interpolation(self):
        assert percentile([0.0, 1.0], 0.5) == 0.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    @given(
        values=st.lists(st.floats(0.0, 1e3), min_size=1, max_size=50),
        quantile=st.floats(0.0, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_result_bounded_by_sample(self, values, quantile):
        ordered = sorted(values)
        result = percentile(ordered, quantile)
        # 1-ulp slack: a*(1-f) + a*f can overshoot a in float arithmetic.
        assert math.nextafter(ordered[0], -math.inf) <= result
        assert result <= math.nextafter(ordered[-1], math.inf)


class TestMeanCi:
    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            mean_ci([])

    def test_single_sample_zero_width(self):
        interval = mean_ci([3.0])
        assert interval.mean == 3.0
        assert interval.half_width == 0.0
        assert interval.n == 1

    def test_all_equal_zero_width(self):
        interval = mean_ci([4.0] * 5)
        assert interval.mean == 4.0
        assert interval.half_width == 0.0

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError, match="confidence"):
            mean_ci([1.0, 2.0], confidence=1.0)

    def test_summarize_single(self):
        summary = summarize([2.0])
        assert summary == {
            "mean": 2.0,
            "std": 0.0,
            "min": 2.0,
            "max": 2.0,
            "n": 1.0,
        }


class TestStreamingLatencies:
    def test_empty_accumulator(self):
        acc = StreamingLatencies()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.percentile(0.5) == 0.0
        assert acc.percentile(1.0) == 0.0

    def test_quantile_out_of_range_rejected(self):
        acc = StreamingLatencies()
        acc.add(0.5)
        with pytest.raises(ValueError, match="quantile"):
            acc.percentile(-0.5)
        with pytest.raises(ValueError, match="quantile"):
            acc.percentile(2.0)

    def test_single_sample_exact_via_clamp(self):
        """min == max == sample, so the clamp returns the exact value."""
        acc = StreamingLatencies()
        acc.add(0.042)
        assert acc.mean == 0.042
        for quantile in (0.0, 0.5, 0.95, 1.0):
            assert acc.percentile(quantile) == 0.042

    def test_all_equal_exact_via_clamp(self):
        acc = StreamingLatencies()
        for _ in range(100):
            acc.add(0.25)
        assert acc.mean == pytest.approx(0.25)
        assert acc.percentile(0.5) == 0.25
        assert acc.percentile(0.99) == 0.25

    def test_below_low_and_above_high_clamped_to_observed(self):
        acc = StreamingLatencies()
        acc.add(1e-6)  # under LOW -> bin 0
        assert acc.percentile(0.5) == 1e-6
        hot = StreamingLatencies()
        hot.add(5e3)  # over HIGH -> last bin
        assert hot.percentile(0.5) == 5e3

    @given(
        values=st.lists(
            st.floats(1e-4, 1e3), min_size=1, max_size=200
        ),
        quantile=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_bounded_by_observed_range(self, values, quantile):
        acc = StreamingLatencies()
        for value in values:
            acc.add(value)
        estimate = acc.percentile(quantile)
        assert min(values) <= estimate <= max(values)

    @given(values=st.lists(st.floats(1e-3, 1e2), min_size=2, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_relative_error_within_bin_width(self, values):
        """Estimate lands within one bin width of its rank's sample.

        The accumulator resolves ``q * (n - 1)`` to the *sample* at the
        truncated rank (no interpolation), then reports that sample's
        bin midpoint — so the documented ~3.2% relative error is against
        the rank sample, not the interpolated percentile.
        """
        acc = StreamingLatencies()
        for value in values:
            acc.add(value)
        rank_sample = sorted(values)[int(0.5 * (len(values) - 1))]
        estimate = acc.percentile(0.5)
        width = math.log(acc.HIGH / acc.LOW) / (acc.BINS - 2)
        assert abs(math.log(estimate / rank_sample)) <= width + 1e-9
