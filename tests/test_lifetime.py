"""Tests for the network lifetime extension (§6 future work)."""

import math

import networkx as nx
import pytest

from repro.core.design_problem import Demand
from repro.core.energy_model import NetworkEnergy
from repro.core.heuristics import IdlingFirstDesign
from repro.core.radio import CABLETRON, HYPOTHETICAL_CABLETRON
from repro.metrics.lifetime import (
    LifetimeReport,
    lifetime_from_design,
    lifetime_from_energy,
    lifetime_from_run,
    steady_state_power,
)
from repro.net.topology import Placement, connectivity_graph, grid_placement
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


def two_node_energy(idle_seconds_a=10.0, idle_seconds_b=10.0):
    energy = NetworkEnergy()
    energy.add_node(0, CABLETRON).charge_idle(idle_seconds_a)
    energy.add_node(1, CABLETRON).charge_idle(idle_seconds_b)
    return energy


def line_graph(n=2):
    graph = nx.path_graph(n)
    return graph


class TestSteadyStatePower:
    def test_average_power(self):
        energy = two_node_energy(idle_seconds_a=10.0)
        draw = steady_state_power(energy, duration=10.0)
        assert draw[0] == pytest.approx(CABLETRON.p_idle)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            steady_state_power(two_node_energy(), 0.0)


class TestLifetimeFromEnergy:
    def test_first_death_is_battery_over_power(self):
        energy = two_node_energy()
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(),
            demands=[(0, 1)], battery_joules=100.0,
        )
        expected = 100.0 / CABLETRON.p_idle
        assert report.time_to_first_death == pytest.approx(expected)

    def test_unequal_drain_order(self):
        energy = NetworkEnergy()
        energy.add_node(0, CABLETRON).charge_idle(10.0)   # heavy drain
        energy.add_node(1, CABLETRON).charge_sleep(10.0)  # light drain
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(),
            demands=[(0, 1)], battery_joules=100.0,
        )
        assert report.death_times[0] < report.death_times[1]

    def test_partition_when_endpoint_dies(self):
        energy = two_node_energy()
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(),
            demands=[(0, 1)], battery_joules=50.0,
        )
        # An endpoint dying partitions the demand immediately.
        assert report.time_to_partition == pytest.approx(
            report.time_to_first_death
        )

    def test_partition_when_relay_dies(self):
        """In a 3-node line, the middle relay's death partitions 0 -> 2."""
        energy = NetworkEnergy()
        energy.add_node(0, CABLETRON).charge_sleep(10.0)
        energy.add_node(1, CABLETRON).charge_idle(10.0)  # relay, heavy drain
        energy.add_node(2, CABLETRON).charge_sleep(10.0)
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(3),
            demands=[(0, 2)], battery_joules=100.0,
        )
        assert report.time_to_partition == pytest.approx(
            report.death_times[1]
        )

    def test_zero_draw_lives_forever(self):
        energy = NetworkEnergy()
        energy.add_node(0, CABLETRON)  # no charges at all
        energy.add_node(1, CABLETRON).charge_idle(10.0)
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(),
            demands=[], battery_joules=100.0,
        )
        assert math.isinf(report.death_times[0])

    def test_per_node_batteries(self):
        energy = two_node_energy()
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(),
            demands=[(0, 1)], battery_joules={0: 50.0, 1: 200.0},
        )
        assert report.death_times[0] < report.death_times[1]


class TestSurvivalCurve:
    def test_monotone_decreasing(self):
        energy = NetworkEnergy()
        for node_id, seconds in ((0, 2.0), (1, 5.0), (2, 10.0)):
            energy.add_node(node_id, CABLETRON).charge_idle(seconds)
        report = lifetime_from_energy(
            energy, duration=10.0, graph=line_graph(3),
            demands=[], battery_joules=100.0,
        )
        curve = report.survival_curve(points=10)
        fractions = [fraction for _, fraction in curve]
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] == 1.0

    def test_alive_fraction_bounds(self):
        report = LifetimeReport(
            death_times={0: 10.0, 1: 20.0},
            time_to_first_death=10.0,
            time_to_partition=None,
            horizon=20.0,
        )
        assert report.alive_fraction(0.0) == 1.0
        assert report.alive_fraction(15.0) == 0.5
        assert report.alive_fraction(25.0) == 0.0

    def test_minimum_points(self):
        report = LifetimeReport({}, 1.0, None, 1.0)
        with pytest.raises(ValueError):
            report.survival_curve(points=1)


class TestLifetimeFromRun:
    def test_simulated_lifetime_is_finite_and_ordered(self):
        placement = Placement(
            {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (200.0, 0.0)}, 200.0, 1.0
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=2,
                          rate_bps=4000.0, start=1.0)]
        active = build_network(placement, "DSR-Active", flows, duration=20.0)
        active.run()
        saving = build_network(placement, "DSR-ODPM", flows, duration=20.0)
        saving.run()
        active_report = lifetime_from_run(active, battery_joules=1000.0)
        saving_report = lifetime_from_run(saving, battery_joules=1000.0)
        assert math.isfinite(active_report.time_to_first_death)
        # Power saving extends the first-death lifetime.
        assert (
            saving_report.time_to_first_death
            > active_report.time_to_first_death
        )


class TestLifetimeFromDesign:
    def test_design_lifetime(self):
        placement = grid_placement(5, 200.0, 200.0)
        graph = connectivity_graph(placement, 120.0, HYPOTHETICAL_CABLETRON)
        demands = [Demand(0, 24, rate=4000.0)]
        heuristic = IdlingFirstDesign(graph, HYPOTHETICAL_CABLETRON, demands)
        design = heuristic.design()
        report = lifetime_from_design(
            heuristic, design, graph, duration=30.0, battery_joules=5000.0
        )
        assert report.time_to_first_death > 0.0
        assert math.isfinite(report.time_to_first_death)
