"""Tests for the network builder, protocol presets and public API surface."""

import pytest

import repro
from repro.core.radio import CABLETRON, PowerMode
from repro.net.topology import Placement
from repro.power import AlwaysActive, Odpm, SpanCoordinator
from repro.routing import Dsr, Titan
from repro.sim.network import PROTOCOLS, NetworkConfig, ProtocolPreset, WirelessNetwork
from repro.sim.psm import NoPsm, PsmScheduler
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


@pytest.fixture
def tiny_placement():
    return Placement(
        {0: (0.0, 0.0), 1: (150.0, 0.0), 2: (300.0, 0.0)}, 300.0, 1.0
    )


def tiny_flow():
    return [FlowSpec(flow_id=0, source=0, destination=2,
                     rate_bps=2000.0, start=1.0)]


class TestProtocolPresets:
    def test_paper_lineup_present(self):
        for label in (
            "DSR-Active", "DSR-ODPM", "DSR-ODPM-PC", "TITAN-PC",
            "DSRH-ODPM(rate)", "DSRH-ODPM(norate)", "DSDVH-ODPM",
            "DSDVH-ODPM(0.6,1.2)-Span", "MTPR-ODPM", "MTPR+-ODPM",
            "DSDV-ODPM", "DSR-Span",
        ):
            assert label in PROTOCOLS, label
            assert PROTOCOLS[label].label == label

    def test_power_control_flags_match_paper(self):
        """PC protocols tune data power; baselines do not."""
        assert PROTOCOLS["TITAN-PC"].power_control
        assert PROTOCOLS["DSR-ODPM-PC"].power_control
        assert PROTOCOLS["MTPR-ODPM"].power_control
        assert not PROTOCOLS["DSR-ODPM"].power_control
        assert not PROTOCOLS["DSR-Active"].power_control

    def test_power_factory_always_active(self):
        preset = PROTOCOLS["DSR-Active"]
        manager = preset.power_factory()(None, 1)
        assert isinstance(manager, AlwaysActive)

    def test_power_factory_odpm(self):
        from repro.sim.engine import Simulator

        preset = PROTOCOLS["DSR-ODPM"]
        manager = preset.power_factory()(Simulator(), 1)
        assert isinstance(manager, Odpm)
        assert manager.config.keepalive_data == 5.0

    def test_span_preset_overrides_manager(self):
        from repro.sim.engine import Simulator

        preset = PROTOCOLS["DSR-Span"]
        manager = preset.power_factory()(Simulator(), 1)
        assert isinstance(manager, SpanCoordinator)

    def test_span_improved_preset_keepalives(self):
        from repro.sim.engine import Simulator

        preset = PROTOCOLS["DSDVH-ODPM(0.6,1.2)-Span"]
        manager = preset.power_factory()(Simulator(), 1)
        assert manager.config.keepalive_data == 0.6
        assert preset.advertised_window


class TestWirelessNetworkAssembly:
    def test_psm_scheduler_only_for_power_saving(self, tiny_placement):
        saving = build_network(tiny_placement, "DSR-ODPM", tiny_flow())
        always = build_network(tiny_placement, "DSR-Active", tiny_flow())
        assert isinstance(saving.psm, PsmScheduler)
        assert isinstance(always.psm, NoPsm)

    def test_advertised_window_propagates(self, tiny_placement):
        net = build_network(
            tiny_placement, "DSDVH-ODPM(0.6,1.2)-Span", tiny_flow()
        )
        assert isinstance(net.psm, PsmScheduler)
        assert net.psm.advertised_window

    def test_routing_classes_match_presets(self, tiny_placement):
        dsr_net = build_network(tiny_placement, "DSR-ODPM", tiny_flow())
        titan_net = build_network(tiny_placement, "TITAN-PC", tiny_flow())
        assert isinstance(dsr_net.nodes[0].routing, Dsr)
        assert isinstance(titan_net.nodes[0].routing, Titan)

    def test_every_node_gets_energy_ledger(self, tiny_placement):
        net = build_network(tiny_placement, "DSR-ODPM", tiny_flow())
        assert len(net.energy) == len(tiny_placement)

    def test_neighbor_mode_oracle(self, tiny_placement):
        net = build_network(tiny_placement, "DSR-ODPM", tiny_flow())
        # All ODPM nodes start in PSM; the oracle must say so.
        assert net.nodes[0].neighbor_mode(1) is PowerMode.POWER_SAVE
        net.nodes[1].power.notify_data_activity()
        assert net.nodes[0].neighbor_mode(1) is PowerMode.ACTIVE

    def test_unknown_neighbor_assumed_active(self, tiny_placement):
        net = build_network(tiny_placement, "DSR-ODPM", tiny_flow())
        assert net.nodes[0].neighbor_mode(999) is PowerMode.ACTIVE

    def test_relays_used_counts_forwarders(self, tiny_placement):
        net = build_network(tiny_placement, "DSR-Active", tiny_flow(),
                            duration=20.0)
        net.run()
        assert net.relays_used() == 1  # only the middle node forwards

    def test_control_packet_count_positive(self, tiny_placement):
        net = build_network(tiny_placement, "DSR-Active", tiny_flow(),
                            duration=20.0)
        net.run()
        assert net.control_packet_count() >= 2  # at least RREQ + RREP

    def test_double_attach_routing_rejected(self, tiny_placement):
        net = build_network(tiny_placement, "DSR-ODPM", tiny_flow())
        with pytest.raises(RuntimeError):
            net.nodes[0].attach_routing(Dsr(net.nodes[0]))

    def test_run_result_metadata(self, tiny_placement):
        net = build_network(tiny_placement, "TITAN-PC", tiny_flow(),
                            duration=15.0, seed=9)
        result = net.run()
        assert result.protocol == "TITAN-PC"
        assert result.seed == 9
        assert result.duration == 15.0
        assert result.events_processed > 0


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quick_run_smoke(self):
        result = repro.quick_run(
            protocol="DSR-ODPM", node_count=12, flow_count=2,
            duration=15.0, seed=2,
        )
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.e_network > 0

    def test_quick_run_unknown_card(self):
        with pytest.raises(KeyError):
            repro.quick_run(card_key="not-a-card")

    def test_subpackage_all_exports_resolve(self):
        import repro.core as core
        import repro.metrics as metrics
        import repro.net as net
        import repro.power as power
        import repro.routing as routing
        import repro.sim as sim

        for module in (core, metrics, net, power, routing, sim):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
