"""Tests for the packet tracer."""

import pytest

from repro.net.topology import Placement
from repro.sim.packet import PacketKind
from repro.sim.trace import Tracer
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


@pytest.fixture
def traced_run():
    placement = Placement(
        {0: (0.0, 0.0), 1: (150.0, 0.0), 2: (300.0, 0.0)}, 300.0, 1.0
    )
    flows = [FlowSpec(flow_id=0, source=0, destination=2,
                      rate_bps=4000.0, start=1.0)]
    net = build_network(placement, "DSR-Active", flows, duration=10.0)
    tracer = Tracer(net)
    result = net.run()
    return net, tracer, result


class TestTracer:
    def test_records_sends_and_deliveries(self, traced_run):
        _, tracer, result = traced_run
        sends = tracer.events(kind="send", packet_kind=PacketKind.DATA)
        delivers = tracer.events(kind="deliver", packet_kind=PacketKind.DATA)
        assert len(sends) >= result.packets_received  # >= one hop each
        assert len(delivers) >= result.packets_received

    def test_events_in_time_order(self, traced_run):
        _, tracer, _ = traced_run
        times = [e.time for e in tracer.events()]
        assert times == sorted(times)

    def test_flow_path_matches_route(self, traced_run):
        net, tracer, _ = traced_run
        path = tracer.flow_path(0)
        assert path[0] == 0
        assert 1 in path  # the only possible relay
        assert tuple(path) == net.extract_routes()[0][:-1]

    def test_summary_counts(self, traced_run):
        _, tracer, _ = traced_run
        summary = tracer.summary()
        assert summary.get("send/data", 0) > 0
        assert summary.get("send/ack", 0) > 0  # unicast data is ACKed

    def test_airtime_accounting(self, traced_run):
        net, tracer, _ = traced_run
        airtime = tracer.airtime_by_kind()
        assert airtime[PacketKind.DATA] > airtime[PacketKind.ACK]
        share = tracer.control_share()
        assert 0.0 < share < 0.6  # RTS/CTS/ACK + discovery, bounded

    def test_node_filter(self, traced_run):
        _, tracer, _ = traced_run
        only_relay = tracer.events(node=1)
        assert only_relay
        assert all(e.node == 1 for e in only_relay)

    def test_write_trace_file(self, traced_run, tmp_path):
        _, tracer, _ = traced_run
        path = tmp_path / "trace.txt"
        count = tracer.write(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count == len(tracer)
        assert "data" in lines[-1] or "ack" in lines[-1]

    def test_max_events_cap(self):
        placement = Placement({0: (0.0, 0.0), 1: (100.0, 0.0)}, 100.0, 1.0)
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=8000.0, start=1.0)]
        net = build_network(placement, "DSR-Active", flows, duration=10.0)
        tracer = Tracer(net, max_events=10)
        net.run()
        assert len(tracer) == 10
        assert tracer.dropped_records > 0

    def test_invalid_cap_rejected(self, traced_run):
        net, _, _ = traced_run
        with pytest.raises(ValueError):
            Tracer(net, max_events=0)

    def test_link_failure_recorded(self):
        placement = Placement(
            {0: (0.0, 100.0), 1: (200.0, 200.0), 2: (200.0, 0.0),
             3: (400.0, 100.0)},
            400.0, 200.0,
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=3,
                          rate_bps=4000.0, start=1.0)]
        net = build_network(placement, "DSR-Active", flows, duration=30.0)
        tracer = Tracer(net)

        def kill():
            relay = net.extract_routes()[0][1]
            net.nodes[relay].fail()

        net.sim.schedule_at(5.0, kill)
        net.run()
        assert tracer.events(kind="link-failure")
