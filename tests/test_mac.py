"""Tests for the CSMA/CA MAC: handshakes, retries, PSM gating."""

import pytest

from repro.core.energy_model import NodeEnergy
from repro.core.radio import CABLETRON
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.mac import Mac
from repro.sim.packet import BROADCAST, PacketKind, make_data_packet, Packet
from repro.sim.phy import Phy


def build_macs(positions, max_range=250.0, rts=True):
    sim = Simulator(seed=5)
    channel = Channel(sim, positions, max_range=max_range)
    macs = {}
    for node_id in positions:
        phy = Phy(sim, channel, node_id, CABLETRON, NodeEnergy(card=CABLETRON))
        macs[node_id] = Mac(sim, phy, rts_enabled=rts)
    return sim, channel, macs


class TestUnicast:
    def test_data_delivered_and_acked(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        delivered = []
        macs[1].on_deliver = lambda p: delivered.append(p)
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        macs[0].send(frame)
        sim.run()
        assert [p.uid for p in delivered] == [frame.uid]
        assert macs[0].stats.sent_unicast == 1
        assert macs[0].stats.drops == 0

    def test_rts_cts_precedes_data_when_enabled(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)}, rts=True)
        kinds = []
        original = macs[1].phy.on_receive
        macs[1].phy.on_receive = lambda p: (kinds.append(p.kind), original(p))
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        sim.run()
        assert kinds[0] is PacketKind.RTS
        assert PacketKind.DATA in kinds

    def test_no_rts_when_disabled(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)}, rts=False)
        kinds = []
        original = macs[1].phy.on_receive
        macs[1].phy.on_receive = lambda p: (kinds.append(p.kind), original(p))
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        sim.run()
        assert PacketKind.RTS not in kinds
        assert PacketKind.DATA in kinds

    def test_queue_drains_in_order(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        seqnos = []
        macs[1].on_deliver = lambda p: seqnos.append(p.seqno)
        for seqno in range(5):
            macs[0].send(
                make_data_packet(origin=0, final_dst=1, src=0, dst=1, seqno=seqno)
            )
        sim.run()
        assert seqnos == [0, 1, 2, 3, 4]

    def test_send_rejects_foreign_src(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        with pytest.raises(ValueError):
            macs[0].send(make_data_packet(origin=1, final_dst=0, src=1, dst=0))


class TestRetriesAndFailure:
    def test_unreachable_destination_reports_link_failure(self):
        """Node 9 does not exist: retries exhaust, routing is notified."""
        sim, channel, macs = build_macs({0: (0, 0), 1: (500, 0)})
        failures = []
        macs[0].on_link_failure = lambda dst, p: failures.append(dst)
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        macs[0].send(frame)  # 500 m > 250 m range: nobody answers
        sim.run()
        assert failures == [1]
        assert macs[0].stats.drops == 1
        assert macs[0].stats.retries == macs[0].retry_limit

    def test_queue_continues_after_drop(self):
        sim, channel, macs = build_macs(
            {0: (0, 0), 1: (500, 0), 2: (100, 0)}
        )
        delivered = []
        macs[2].on_deliver = lambda p: delivered.append(p.dst)
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        macs[0].send(make_data_packet(origin=0, final_dst=2, src=0, dst=2))
        sim.run()
        assert delivered == [2]

    def test_hidden_terminal_eventually_delivers_via_retries(self):
        """0 and 2 cannot hear each other; both send to 1."""
        sim, channel, macs = build_macs(
            {0: (0, 0), 1: (200, 0), 2: (400, 0)}, max_range=250.0
        )
        delivered = []
        macs[1].on_deliver = lambda p: delivered.append(p.src)
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        macs[2].send(make_data_packet(origin=2, final_dst=1, src=2, dst=1))
        sim.run()
        assert sorted(delivered) == [0, 2]


class TestBroadcast:
    def test_broadcast_reaches_all_neighbors(self):
        sim, channel, macs = build_macs(
            {0: (0, 0), 1: (100, 0), 2: (200, 0), 3: (600, 0)}
        )
        heard = []
        for node_id in (1, 2, 3):
            macs[node_id].on_deliver = lambda p, n=node_id: heard.append(n)
        frame = Packet(
            kind=PacketKind.ROUTING, src=0, dst=BROADCAST, size_bytes=40
        )
        macs[0].send(frame)
        sim.run()
        assert sorted(heard) == [1, 2]  # node 3 out of range

    def test_broadcast_not_acked_or_retried(self):
        sim, channel, macs = build_macs({0: (0, 0)})
        frame = Packet(
            kind=PacketKind.ROUTING, src=0, dst=BROADCAST, size_bytes=40
        )
        macs[0].send(frame)
        sim.run()
        assert macs[0].stats.sent_broadcast == 1
        assert macs[0].stats.retries == 0

    def test_broadcast_gating_oracle(self):
        """Broadcasts wait while broadcast_clear is False."""
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        gate = {"open": False}
        macs[0].broadcast_clear = lambda: gate["open"]
        heard = []
        macs[1].on_deliver = lambda p: heard.append(p)
        frame = Packet(
            kind=PacketKind.ROUTING, src=0, dst=BROADCAST, size_bytes=40
        )
        macs[0].send(frame)
        sim.run(until=1.0)
        assert heard == []
        gate["open"] = True
        macs[0].kick()
        sim.run()
        assert len(heard) == 1


class TestPsmGating:
    def test_unicast_held_until_peer_awake(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        awake = {"val": False}
        macs[0].peer_awake = lambda dst: awake["val"]
        delivered = []
        macs[1].on_deliver = lambda p: delivered.append(p)
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        sim.run(until=1.0)
        assert delivered == []
        awake["val"] = True
        macs[0].kick()
        sim.run()
        assert len(delivered) == 1

    def test_no_head_of_line_blocking(self):
        """A held frame must not block traffic to awake destinations."""
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0), 2: (150, 0)})
        macs[0].peer_awake = lambda dst: dst != 1
        delivered = []
        macs[2].on_deliver = lambda p: delivered.append(p.dst)
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        macs[0].send(make_data_packet(origin=0, final_dst=2, src=0, dst=2))
        sim.run(until=1.0)
        assert delivered == [2]

    def test_pending_destinations_reported(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0), 2: (150, 0)})
        macs[0].peer_awake = lambda dst: False
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        macs[0].send(make_data_packet(origin=0, final_dst=2, src=0, dst=2))
        assert macs[0].pending_unicast_destinations() == {1, 2}

    def test_has_pending_broadcast(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        macs[0].broadcast_clear = lambda: False
        assert not macs[0].has_pending_broadcast()
        macs[0].send(
            Packet(kind=PacketKind.ROUTING, src=0, dst=BROADCAST, size_bytes=40)
        )
        sim.run(until=0.5)
        assert macs[0].has_pending_broadcast()

    def test_sleeping_sender_defers(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)})
        macs[0].phy.sleep()
        delivered = []
        macs[1].on_deliver = lambda p: delivered.append(p)
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        sim.run(until=1.0)
        assert delivered == []
        macs[0].phy.wake()
        macs[0].kick()
        sim.run()
        assert len(delivered) == 1


class TestEnergyAccounting:
    def test_sender_charges_tx_receiver_charges_rx(self):
        sim, channel, macs = build_macs({0: (0, 0), 1: (100, 0)}, rts=False)
        macs[0].send(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        sim.run()
        for mac in macs.values():
            mac.phy.finalize()
        assert macs[0].phy.energy.data_tx > 0
        assert macs[1].phy.energy.data_rx > 0
        # The ACK is control traffic in both directions.
        assert macs[1].phy.energy.control_tx > 0
        assert macs[0].phy.energy.control_rx > 0
