"""Tests for the route-selection cost functions (Eqs. 10–12)."""

import pytest

from repro.core.radio import CABLETRON, MICA2, PowerMode
from repro.routing.costs import (
    HopCount,
    JointCost,
    MtprCost,
    MtprPlusCost,
    route_cost,
)

AM = PowerMode.ACTIVE
PSM = PowerMode.POWER_SAVE


class TestHopCount:
    def test_always_one(self):
        cost = HopCount()
        assert cost(10.0, AM, None) == 1.0
        assert cost(250.0, PSM, 1e6) == 1.0


class TestMtprCost:
    """Eq. 10: f(u, v) = P_t(u, v)."""

    def test_matches_transmit_power_level(self):
        cost = MtprCost(CABLETRON)
        assert cost(100.0, AM, None) == pytest.approx(
            CABLETRON.transmit_power_level(100.0)
        )

    def test_ignores_power_mode_and_rate(self):
        cost = MtprCost(CABLETRON)
        assert cost(100.0, AM, None) == cost(100.0, PSM, 5000.0)

    def test_two_short_hops_beat_one_long_hop(self):
        """The defining property of MTPR under polynomial attenuation."""
        cost = MtprCost(CABLETRON)
        assert 2 * cost(100.0, AM, None) < cost(200.0, AM, None)


class TestMtprPlusCost:
    """Eq. 11: f(u, v) = P_base + P_t(u, v) + P_rx."""

    def test_adds_fixed_costs(self):
        plain = MtprCost(CABLETRON)
        plus = MtprPlusCost(CABLETRON)
        assert plus(100.0, AM, None) == pytest.approx(
            plain(100.0, AM, None) + CABLETRON.p_base + CABLETRON.p_rx
        )

    def test_discourages_extra_relays_at_short_distance(self):
        """With fixed costs, splitting a short hop is not worth it."""
        cost = MtprPlusCost(CABLETRON)
        assert 2 * cost(50.0, AM, None) > cost(100.0, AM, None)


class TestJointCost:
    """Eq. 12: h(u, v, r) with PSM penalty."""

    def test_psm_relay_pays_idle_penalty(self):
        cost = JointCost(CABLETRON, use_rate=False)
        assert cost(100.0, PSM, None) - cost(100.0, AM, None) == pytest.approx(
            CABLETRON.p_idle
        )

    def test_rate_scaling(self):
        cost = JointCost(CABLETRON, use_rate=True)
        full = cost(100.0, AM, CABLETRON.bandwidth)
        half = cost(100.0, AM, CABLETRON.bandwidth / 2)
        assert half == pytest.approx(full / 2)

    def test_norate_treats_utilization_as_one(self):
        with_rate = JointCost(CABLETRON, use_rate=True)
        norate = JointCost(CABLETRON, use_rate=False)
        assert norate(100.0, AM, 123.0) == pytest.approx(
            with_rate(100.0, AM, CABLETRON.bandwidth)
        )

    def test_communication_term_formula(self):
        cost = JointCost(CABLETRON, use_rate=False)
        expected = (
            CABLETRON.transmit_power(100.0)
            + CABLETRON.p_rx
            - 2 * CABLETRON.p_idle
        )
        assert cost(100.0, AM, None) == pytest.approx(expected)

    def test_clamped_at_zero_for_idle_dominant_cards(self):
        """Mica2: P_tx + P_rx < 2 P_idle at short range; cost must not go
        negative (which would reward gratuitous relays)."""
        cost = JointCost(MICA2, use_rate=False)
        assert MICA2.transmit_power(1.0) + MICA2.p_rx < 2 * MICA2.p_idle
        assert cost(1.0, AM, None) == 0.0

    def test_rate_capped_at_bandwidth(self):
        cost = JointCost(CABLETRON, use_rate=True)
        assert cost(100.0, AM, 10 * CABLETRON.bandwidth) == pytest.approx(
            cost(100.0, AM, CABLETRON.bandwidth)
        )

    def test_low_rate_flow_prefers_awake_detour(self):
        """At low rates the PSM penalty dominates: a longer route through
        active nodes is cheaper than a short route through sleeping ones —
        the heart of the idling-first argument."""
        cost = JointCost(CABLETRON, use_rate=True)
        rate = 4000.0  # 4 Kbit/s
        sleeping_direct = cost(100.0, PSM, rate)
        awake_detour = 2 * cost(120.0, AM, rate)
        assert awake_detour < sleeping_direct


class TestRouteCost:
    def test_sums_per_hop(self):
        cost = MtprCost(CABLETRON)
        total = route_cost(cost, [100.0, 150.0], [AM, AM])
        assert total == pytest.approx(
            cost(100.0, AM, None) + cost(150.0, AM, None)
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            route_cost(HopCount(), [100.0], [AM, PSM])
