"""Tests for the radio card models (Table 1)."""

import math

import pytest

from repro.core.radio import (
    AIRONET_350,
    CABLETRON,
    CARD_REGISTRY,
    HYPOTHETICAL_CABLETRON,
    LEACH_N2,
    LEACH_N4,
    MICA2,
    RadioModel,
    RadioState,
    fig7_card_configs,
    get_card,
)

MW = 1e-3


class TestTable1Values:
    """Every Table 1 entry, converted to watts."""

    def test_aironet_powers(self):
        assert AIRONET_350.p_idle == pytest.approx(1.350)
        assert AIRONET_350.p_rx == pytest.approx(1.350)
        assert AIRONET_350.p_base == pytest.approx(2.165)
        assert AIRONET_350.alpha2 == pytest.approx(3.6e-7 * MW)

    def test_cabletron_powers(self):
        assert CABLETRON.p_idle == pytest.approx(0.830)
        assert CABLETRON.p_rx == pytest.approx(1.000)
        assert CABLETRON.p_base == pytest.approx(1.118)
        assert CABLETRON.alpha2 == pytest.approx(7.2e-8 * MW)

    def test_hypothetical_matches_cabletron_except_alpha2(self):
        assert HYPOTHETICAL_CABLETRON.p_idle == CABLETRON.p_idle
        assert HYPOTHETICAL_CABLETRON.p_rx == CABLETRON.p_rx
        assert HYPOTHETICAL_CABLETRON.p_base == CABLETRON.p_base
        assert HYPOTHETICAL_CABLETRON.alpha2 == pytest.approx(5.2e-6 * MW)

    def test_mica2_powers(self):
        assert MICA2.p_idle == pytest.approx(0.021)
        assert MICA2.p_base == pytest.approx(0.0102)
        assert MICA2.alpha2 == pytest.approx(9.4e-7 * MW)

    def test_leach_exponents(self):
        assert LEACH_N4.path_loss_exponent == 4.0
        assert LEACH_N2.path_loss_exponent == 2.0
        assert LEACH_N2.alpha2 == pytest.approx(1e-2 * MW)

    def test_sleep_far_below_idle_for_all_cards(self):
        for card in CARD_REGISTRY.values():
            assert card.p_sleep < 0.2 * card.p_idle

    def test_fig7_configs_cover_six_lines(self):
        configs = fig7_card_configs()
        assert len(configs) == 6
        distances = {card.name: d for card, d in configs}
        assert distances["Cabletron"] == 250.0
        assert distances["Aironet 350"] == 140.0
        assert distances["Mica2"] == 68.0


class TestTransmitPower:
    def test_zero_distance_is_base_cost(self):
        assert CABLETRON.transmit_power(0.0) == pytest.approx(CABLETRON.p_base)

    def test_cabletron_at_max_range(self):
        # 1118 mW + 7.2e-8 * 250^4 mW = 1118 + 281.25 mW
        expected = (1118 + 7.2e-8 * 250**4) * MW
        assert CABLETRON.transmit_power(250.0) == pytest.approx(expected)

    def test_power_grows_with_distance(self):
        powers = [CABLETRON.transmit_power(d) for d in (10, 50, 100, 200, 250)]
        assert powers == sorted(powers)
        assert powers[-1] > powers[0]

    def test_quartic_attenuation(self):
        p1 = CABLETRON.transmit_power_level(100.0)
        p2 = CABLETRON.transmit_power_level(200.0)
        assert p2 / p1 == pytest.approx(16.0)

    def test_leach_n2_quadratic_attenuation(self):
        p1 = LEACH_N2.transmit_power_level(10.0)
        p2 = LEACH_N2.transmit_power_level(30.0)
        assert p2 / p1 == pytest.approx(9.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            CABLETRON.transmit_power(-1.0)

    def test_range_inversion_roundtrip(self):
        for distance in (10.0, 77.7, 250.0):
            level = CABLETRON.transmit_power_level(distance)
            assert CABLETRON.range_for_power_level(level) == pytest.approx(distance)

    def test_range_inversion_rejects_negative(self):
        with pytest.raises(ValueError):
            CABLETRON.range_for_power_level(-0.1)

    def test_hypothetical_transmit_power_is_watts_scale(self):
        # The paper notes ~20 W at 250 m for the hypothetical card.
        p = HYPOTHETICAL_CABLETRON.transmit_power(250.0)
        assert 15.0 < p < 25.0


class TestStatePower:
    def test_all_states_have_power(self):
        for state in RadioState:
            assert CABLETRON.power(state, distance=100.0) >= 0.0

    def test_transmit_without_distance_uses_max_power(self):
        assert CABLETRON.power(RadioState.TRANSMIT) == pytest.approx(
            CABLETRON.p_tx_max
        )

    def test_idle_as_large_as_receive_order(self):
        # Idle power is "as large as receive power" (Feeney/Nilsson): same
        # order of magnitude for the measured cards.
        for card in (AIRONET_350, CABLETRON, MICA2):
            assert card.p_idle >= 0.5 * card.p_rx


class TestDerivedCards:
    def test_with_alpha2(self):
        derived = CABLETRON.with_alpha2(1e-6)
        assert derived.alpha2 == 1e-6
        assert derived.p_idle == CABLETRON.p_idle

    def test_scaled_idle_models_leach_x_factor(self):
        half = LEACH_N4.scaled_idle(0.5)
        assert half.p_idle == pytest.approx(0.5 * LEACH_N4.p_rx)

    def test_scaled_idle_rejects_negative(self):
        with pytest.raises(ValueError):
            LEACH_N4.scaled_idle(-0.5)


class TestValidationAndRegistry:
    def test_registry_lookup(self):
        assert get_card("cabletron") is CABLETRON
        assert get_card("hypothetical") is HYPOTHETICAL_CABLETRON

    def test_unknown_card_lists_available(self):
        with pytest.raises(KeyError, match="cabletron"):
            get_card("nonexistent")

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(name="bad", p_idle=-1, p_rx=1, p_base=1, alpha2=1e-9)

    def test_extreme_exponent_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(
                name="bad", p_idle=1, p_rx=1, p_base=1, alpha2=1e-9,
                path_loss_exponent=9.0,
            )

    def test_zero_range_rejected(self):
        with pytest.raises(ValueError):
            RadioModel(
                name="bad", p_idle=1, p_rx=1, p_base=1, alpha2=1e-9, max_range=0.0
            )
