"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator, Timer


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("late"), priority=5)
        sim.schedule(1.0, lambda: order.append("early"), priority=-5)
        sim.run()
        assert order == ["early", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.pending() == 1

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_step_returns_false_on_empty_queue(self):
        assert Simulator().step() is False

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1


class TestHeapCompaction:
    """Cancelled events must not grow the heap beyond O(live events)."""

    def test_restart_churn_keeps_heap_bounded(self):
        # Timer.restart cancels and re-schedules; 10k restarts used to leave
        # 10k dead entries in the queue for the rest of the run.
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        for _ in range(10_000):
            timer.restart(1.0)
        assert sim.pending() == 1
        # Compaction triggers when dead entries exceed both the floor (64)
        # and half the queue, so the raw heap stays within a small constant
        # of the live count.
        assert sim.queue_size() < 200
        sim.run()
        assert sim.pending() == 0

    def test_many_timers_churning(self):
        sim = Simulator()
        fired = []
        timers = [
            Timer(sim, lambda i=i: fired.append(i)) for i in range(50)
        ]
        for round_no in range(100):
            for timer in timers:
                timer.restart(1.0 + round_no * 1e-3)
        assert sim.pending() == 50
        assert sim.queue_size() < 50 + 2 * 64 + 2
        sim.run()
        assert sorted(fired) == list(range(50))

    def test_compaction_preserves_order(self):
        sim = Simulator()
        order = []
        handles = []
        for i in range(300):
            handles.append(sim.schedule(float(i), lambda i=i: order.append(i)))
        for handle in handles[::2]:  # cancel 150 of 300: compaction fires
            handle.cancel()
        sim.run()
        assert order == list(range(1, 300, 2))

    def test_cancel_after_fire_does_not_corrupt_dead_count(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()  # no-op: the event already fired
        sim.schedule(1.0, lambda: None)
        assert sim.pending() == 1

    def test_pending_is_queue_minus_dead(self):
        sim = Simulator()
        keep = [sim.schedule(1.0, lambda: None) for _ in range(10)]
        drop = [sim.schedule(2.0, lambda: None) for _ in range(10)]
        for handle in drop:
            handle.cancel()
            handle.cancel()  # idempotent: must not double-count
        assert sim.pending() == 10


class TestDeterminism:
    def test_rng_streams_are_reproducible(self):
        a = Simulator(seed=7).rng("mac-1")
        b = Simulator(seed=7).rng("mac-1")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_rng_streams_are_independent(self):
        sim = Simulator(seed=7)
        stream_a = [sim.rng("a").random() for _ in range(5)]
        sim2 = Simulator(seed=7)
        sim2.rng("b").random()  # consuming another stream must not matter
        stream_a2 = [sim2.rng("a").random() for _ in range(5)]
        assert stream_a == stream_a2

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(3.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_supersedes(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(3.0)
        sim.schedule(1.0, lambda: timer.restart(5.0))
        sim.run()
        assert fired == [6.0]

    def test_extend_to_only_extends(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(10.0)
        timer.extend_to(2.0)  # earlier than current expiry: ignored
        sim.run()
        assert fired == [10.0]

    def test_extend_to_later(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(2.0)
        timer.extend_to(10.0)
        sim.run()
        assert fired == [10.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.restart(1.0)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_expires_at(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.expires_at is None
        timer.restart(4.0)
        assert timer.expires_at == pytest.approx(4.0)

    def test_rearmed_inside_callback(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(sim.now)
            if len(count) < 3:
                timer.restart(1.0)

        timer = Timer(sim, tick)
        timer.restart(1.0)
        sim.run()
        assert count == [1.0, 2.0, 3.0]
