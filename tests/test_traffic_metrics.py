"""Tests for traffic generation and the metrics layer."""

import random

import pytest

from repro.core.energy_model import NetworkEnergy
from repro.core.radio import CABLETRON
from repro.metrics.collectors import RunResult, aggregate_runs
from repro.metrics.stats import ConfidenceInterval, mean_ci, summarize
from repro.net.topology import Placement
from repro.traffic.cbr import FlowStats
from repro.traffic.flows import FlowSpec, grid_flows, random_flows

from tests.conftest import build_network


class TestFlowSpec:
    def test_interval(self):
        spec = FlowSpec(flow_id=0, source=0, destination=1,
                        rate_bps=2048.0, packet_bytes=128)
        assert spec.interval == pytest.approx(0.5)

    def test_paper_rates_give_packets_per_second(self):
        """2-6 Kbit/s at 128 B equals 2-6 packets/s (the paper's phrasing)."""
        for kbps in (2, 4, 6):
            spec = FlowSpec(flow_id=0, source=0, destination=1,
                            rate_bps=kbps * 1000.0, packet_bytes=128)
            assert spec.interval == pytest.approx(1.024 / kbps)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, source=1, destination=1, rate_bps=1.0)
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, source=0, destination=1, rate_bps=0.0)
        with pytest.raises(ValueError):
            FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1.0,
                     start=10.0, stop=5.0)


class TestFlowSelection:
    def test_random_flows_distinct_sources(self):
        rng = random.Random(1)
        flows = random_flows(list(range(20)), 10, 4000.0, rng)
        sources = [f.source for f in flows]
        assert len(set(sources)) == 10

    def test_random_flows_start_window(self):
        rng = random.Random(1)
        flows = random_flows(list(range(20)), 5, 4000.0, rng,
                             start_window=(20.0, 25.0))
        for flow in flows:
            assert 20.0 <= flow.start <= 25.0

    def test_too_many_flows_rejected(self):
        with pytest.raises(ValueError):
            random_flows([1, 2], 3, 1000.0, random.Random(1))

    def test_grid_flows_left_to_right(self):
        rng = random.Random(1)
        flows = grid_flows(7, 4000.0, rng)
        assert len(flows) == 7
        for row, flow in enumerate(flows):
            assert flow.source == row * 7
            assert flow.destination == row * 7 + 6


class TestCbrEndToEnd:
    def test_sink_counts_unique_packets(self):
        placement = Placement({0: (0.0, 0.0), 1: (100.0, 0.0)}, 100.0, 1.0)
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=4096.0, start=1.0)]
        net = build_network(placement, "DSR-Active", flows, duration=11.0)
        result = net.run()
        stats = result.flows[0]
        # 10 s of 4 packets/s = 40 packets; the final packet may still be in
        # flight when the simulation horizon cuts off.
        assert stats.sent == pytest.approx(40, abs=1)
        assert stats.received >= stats.sent - 1
        assert stats.duplicates == 0
        assert stats.delivery_ratio > 0.97

    def test_flow_stop_time_respected(self):
        placement = Placement({0: (0.0, 0.0), 1: (100.0, 0.0)}, 100.0, 1.0)
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=4096.0, start=1.0, stop=3.0)]
        net = build_network(placement, "DSR-Active", flows, duration=10.0)
        result = net.run()
        assert result.flows[0].sent <= 9

    def test_latency_recorded(self):
        placement = Placement({0: (0.0, 0.0), 1: (100.0, 0.0)}, 100.0, 1.0)
        flows = [FlowSpec(flow_id=0, source=0, destination=1,
                          rate_bps=4096.0, start=1.0)]
        net = build_network(placement, "DSR-Active", flows, duration=5.0)
        result = net.run()
        assert result.flows[0].mean_latency > 0.0
        assert result.flows[0].mean_latency < 0.1


class TestStats:
    def test_mean_ci_known_values(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.mean == pytest.approx(3.0)
        # t(0.975, df=4) = 2.776; sem = sqrt(2.5/5).
        assert ci.half_width == pytest.approx(2.776 * (2.5 / 5) ** 0.5, rel=1e-3)

    def test_single_sample_zero_width(self):
        ci = mean_ci([7.0])
        assert ci.mean == 7.0
        assert ci.half_width == 0.0

    def test_interval_bounds(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, n=5)
        assert ci.low == 8.0 and ci.high == 12.0

    def test_overlap(self):
        a = ConfidenceInterval(mean=10.0, half_width=2.0, n=5)
        b = ConfidenceInterval(mean=13.0, half_width=2.0, n=5)
        c = ConfidenceInterval(mean=20.0, half_width=2.0, n=5)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_summarize(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0 and summary["max"] == 6.0
        assert summary["n"] == 3


class TestRunResultAggregation:
    def make_result(self, seed, received=90):
        spec = FlowSpec(flow_id=0, source=0, destination=1, rate_bps=4000.0)
        stats = FlowStats(spec=spec, sent=100, received=received)
        energy = NetworkEnergy()
        energy.add_node(0, CABLETRON).charge_idle(10.0)
        return RunResult.from_components(
            protocol="TITAN-PC", seed=seed, duration=100.0,
            flows=[stats], energy=energy,
        )

    def test_delivery_ratio(self):
        result = self.make_result(1, received=90)
        assert result.delivery_ratio == pytest.approx(0.9)

    def test_energy_goodput(self):
        result = self.make_result(1, received=100)
        expected = (100 * 128 * 8) / (10.0 * CABLETRON.p_idle)
        assert result.energy_goodput == pytest.approx(expected)

    def test_aggregate_means(self):
        results = [self.make_result(s, received=80 + s) for s in range(1, 6)]
        agg = aggregate_runs(results)
        assert agg.runs == 5
        assert agg.delivery_ratio.mean == pytest.approx(0.83)

    def test_aggregate_rejects_mixed_protocols(self):
        a = self.make_result(1)
        b = self.make_result(2)
        b.protocol = "DSR-ODPM"
        with pytest.raises(ValueError):
            aggregate_runs([a, b])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_runs([])
