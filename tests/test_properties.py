"""Property-based tests (hypothesis) on core invariants."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytical import (
    characteristic_hop_count,
    minimum_alpha2_for_relaying,
    optimal_hop_count,
    route_energy,
)
from repro.core.design_problem import SteinerForestExample, SteinerTreeExample
from repro.core.energy_model import NodeEnergy
from repro.core.radio import CABLETRON, RadioModel
from repro.metrics.stats import mean_ci
from repro.net.steiner import kmb_steiner_tree
from repro.routing.base import RouteCache
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

cards = st.builds(
    RadioModel,
    name=st.just("gen"),
    p_idle=st.floats(0.001, 2.0),
    p_rx=st.floats(0.001, 2.0),
    p_base=st.floats(0.001, 3.0),
    alpha2=st.floats(1e-12, 1e-6),
    path_loss_exponent=st.sampled_from([2.0, 3.0, 4.0]),
    max_range=st.floats(10.0, 500.0),
)

utilizations = st.floats(0.01, 0.5)
distances = st.floats(1.0, 1000.0)


class TestAnalyticalProperties:
    @given(card=cards, distance=distances, utilization=utilizations)
    @settings(max_examples=200)
    def test_mopt_nonnegative_and_finite(self, card, distance, utilization):
        m = optimal_hop_count(card, distance, utilization)
        assert m >= 0.0
        assert math.isfinite(m)

    @given(card=cards, distance=distances, utilization=utilizations)
    @settings(max_examples=200)
    def test_characteristic_hop_count_at_least_one(
        self, card, distance, utilization
    ):
        assert characteristic_hop_count(card, distance, utilization) >= 1

    @given(card=cards, distance=distances, utilization=utilizations)
    @settings(max_examples=100)
    def test_mopt_scales_linearly_with_distance(self, card, distance, utilization):
        m1 = optimal_hop_count(card, distance, utilization)
        m2 = optimal_hop_count(card, 2 * distance, utilization)
        assert m2 == pytest.approx(2 * m1, rel=1e-9)

    @given(card=cards, distance=distances, utilization=utilizations)
    @settings(max_examples=100)
    def test_minimum_alpha2_inversion(self, card, distance, utilization):
        """Eq. 15 and its inversion agree at the threshold."""
        alpha2 = minimum_alpha2_for_relaying(card, distance, utilization, 2)
        threshold_card = card.with_alpha2(alpha2)
        m = optimal_hop_count(threshold_card, distance, utilization)
        assert m == pytest.approx(2.0, rel=1e-9)

    @given(
        card=cards,
        distance=st.floats(10.0, 500.0),
        utilization=utilizations,
        duration=st.floats(0.1, 100.0),
    )
    @settings(max_examples=100)
    def test_route_energy_positive_and_monotone_in_duration(
        self, card, distance, utilization, duration
    ):
        e1 = route_energy(card, distance, 2, utilization, duration)
        e2 = route_energy(card, distance, 2, utilization, 2 * duration)
        assert e1 > 0
        assert e2 == pytest.approx(2 * e1, rel=1e-9)


class TestEnergyLedgerProperties:
    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(["idle", "sleep", "data_rx", "control_rx"]),
                st.floats(0.0, 100.0),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_total_is_sum_of_parts_and_nonnegative(self, charges):
        ledger = NodeEnergy(card=CABLETRON)
        for kind, duration in charges:
            getattr(ledger, "charge_" + kind)(duration)
        assert ledger.total >= 0.0
        assert ledger.total == pytest.approx(
            ledger.e_comm + ledger.e_passive
        )
        assert ledger.e_passive == pytest.approx(
            ledger.idle + ledger.sleep + ledger.switch
        )

    @given(durations=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_charging_is_additive(self, durations):
        one_shot = NodeEnergy(card=CABLETRON)
        one_shot.charge_idle(sum(durations))
        split = NodeEnergy(card=CABLETRON)
        for d in durations:
            split.charge_idle(d)
        assert split.idle == pytest.approx(one_shot.idle, rel=1e-9)


class TestExampleProperties:
    @given(k=st.integers(1, 60), alpha=st.floats(0.1, 10.0), z=st.floats(0.1, 10.0))
    @settings(max_examples=100)
    def test_st2_never_exceeds_st1(self, k, alpha, z):
        example = SteinerTreeExample(k=k, alpha=alpha, z=z)
        assert example.st2_energy() <= example.st1_energy()

    @given(k=st.integers(1, 60), alpha=st.floats(0.1, 10.0), z=st.floats(0.1, 10.0))
    @settings(max_examples=100)
    def test_sf2_never_exceeds_sf1(self, k, alpha, z):
        example = SteinerForestExample(k=k, alpha=alpha, z=z)
        assert example.sf2_energy() <= example.sf1_energy()
        assert example.endpoint_inclusive_ratio() < 1.5

    @given(k=st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_instance_consistency(self, k):
        """Graph-evaluated solutions always match the closed forms."""
        example = SteinerForestExample(k=k)
        instance = example.instance()
        assert instance.evaluate(example.sf1_solution()) == pytest.approx(
            example.sf1_energy()
        )
        assert instance.evaluate(example.sf2_solution()) == pytest.approx(
            example.sf2_energy()
        )


class TestEngineProperties:
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
        cancel_index=st.integers(0, 29),
    )
    @settings(max_examples=100)
    def test_cancellation_removes_exactly_one(self, delays, cancel_index):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        cancel_index %= len(handles)
        handles[cancel_index].cancel()
        sim.run()
        assert len(fired) == len(delays) - 1
        assert cancel_index not in fired


class TestSteinerProperties:
    @given(
        n=st.integers(4, 12),
        seed=st.integers(0, 1000),
        terminal_count=st.integers(2, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_kmb_tree_spans_terminals_on_random_graphs(
        self, n, seed, terminal_count
    ):
        import random as _random

        rng = _random.Random(seed)
        graph = nx.connected_watts_strogatz_graph(n, k=3, p=0.3, seed=seed)
        for u, v in graph.edges:
            graph.edges[u, v]["weight"] = rng.uniform(0.1, 10.0)
        terminals = rng.sample(list(graph.nodes), min(terminal_count, n))
        tree = kmb_steiner_tree(graph, terminals)
        assert nx.is_tree(tree) or tree.number_of_nodes() == 1
        for terminal in terminals:
            assert terminal in tree.nodes
        leaves = [x for x in tree.nodes if tree.degree(x) == 1]
        assert set(leaves) <= set(terminals) | (
            {list(tree.nodes)[0]} if tree.number_of_nodes() == 1 else set()
        )


class TestRouteCacheProperties:
    @given(
        offers=st.lists(
            st.tuples(
                st.integers(1, 5),     # destination
                st.integers(2, 6),     # path length
                st.floats(0.0, 100.0), # cost
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_cache_keeps_cheapest_route(self, offers):
        sim = Simulator()
        cache = RouteCache(sim)
        best: dict[int, float] = {}
        for destination, length, cost in offers:
            path = tuple(range(100, 100 + length - 1)) + (destination,)
            cache.offer(destination, path, cost)
            best[destination] = min(best.get(destination, math.inf), cost)
        for destination, expected in best.items():
            cached = cache.get(destination)
            assert cached is not None
            assert cached.cost <= expected + 1e-9


class TestTrafficModelProperties:
    """Seed-determinism invariants of every registered traffic generator."""

    @staticmethod
    def _spec(rate_bps: float) -> "FlowSpec":
        from repro.traffic.flows import FlowSpec

        return FlowSpec(flow_id=0, source=0, destination=1, rate_bps=rate_bps)

    @given(
        seed=st.integers(0, 10_000),
        rate_bps=st.floats(500.0, 50_000.0),
        model_name=st.sampled_from(["cbr", "poisson", "onoff", "vbr"]),
    )
    @settings(max_examples=150)
    def test_same_seed_reproduces_schedule(self, seed, rate_bps, model_name):
        import random as _random

        from repro.traffic.models import TRAFFIC_MODELS

        model = TRAFFIC_MODELS[model_name]()
        spec = self._spec(rate_bps)

        def first(n: int) -> list:
            gen = model.arrivals(spec, _random.Random(seed))
            return [next(gen) for _ in range(n)]

        assert first(40) == first(40)

    @given(
        seed=st.integers(0, 10_000),
        rate_bps=st.floats(500.0, 50_000.0),
        model_name=st.sampled_from(["cbr", "poisson", "onoff", "vbr"]),
    )
    @settings(max_examples=150)
    def test_gaps_nonnegative_sizes_positive(self, seed, rate_bps, model_name):
        import random as _random

        from repro.traffic.models import TRAFFIC_MODELS

        gen = TRAFFIC_MODELS[model_name]().arrivals(
            self._spec(rate_bps), _random.Random(seed)
        )
        total = 0.0
        for _ in range(60):
            gap, size = next(gen)
            assert gap >= 0.0
            assert size >= 1
            total += gap
        assert total > 0.0  # schedules advance; no zero-time packet storms

    @given(
        flow_count=st.integers(1, 10),
        seed=st.integers(0, 1000),
        duration=st.floats(50.0, 2000.0),
    )
    @settings(max_examples=100)
    def test_flow_dynamics_rewrite_invariants(self, flow_count, seed, duration):
        import random as _random

        from repro.traffic.flows import FlowSpec
        from repro.traffic.models import FlowDynamicsSpec, apply_flow_dynamics

        flows = [
            FlowSpec(flow_id=i, source=i, destination=100 + i, rate_bps=4000.0)
            for i in range(flow_count)
        ]
        spec = FlowDynamicsSpec()
        rewritten = apply_flow_dynamics(
            flows, spec, duration, _random.Random(seed)
        )
        assert rewritten == apply_flow_dynamics(
            flows, spec, duration, _random.Random(seed)
        )
        for flow in rewritten:
            low, high = spec.arrival_window
            assert low * duration <= flow.start <= high * duration
            assert flow.stop is None or flow.start < flow.stop < duration


class TestStatsProperties:
    @given(
        samples=st.lists(
            st.floats(-1e6, 1e6),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=100)
    def test_ci_contains_mean_and_is_symmetric(self, samples):
        ci = mean_ci(samples)
        assert ci.low <= ci.mean <= ci.high
        assert ci.high - ci.mean == pytest.approx(ci.mean - ci.low, abs=1e-6)

    @given(samples=st.lists(st.floats(0.0, 1e3), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_higher_confidence_wider_interval(self, samples):
        narrow = mean_ci(samples, confidence=0.90)
        wide = mean_ci(samples, confidence=0.99)
        assert wide.half_width >= narrow.half_width
