"""Pluggable store backends, store merging and manifest sharding.

Covers the distributed-campaign half of the reporting/backends subsystem:

* :class:`LocalJsonBackend` — the historical layout stays byte-for-byte
  (paths, file bytes, quarantine renames, temp-file staging);
* :class:`SqliteBackend` — round-trip, quarantine-as-flag, container
  verification, auto-detection on reopen;
* backend parity — the same runs cached under either backend record the
  same keys and payload digests (including the pinned TINY digest), and
  a warm sqlite cache serves hits exactly like a warm JSON cache;
* :func:`merge_stores` — the sixth leg of the determinism contract:
  shards cached under *different* backends merge into a store
  byte-identical to a single-machine reference, overlap is fine when
  digests agree, divergent payloads raise naming the key, corrupt
  source entries are never inherited;
* :meth:`SweepManifest.shard` / :meth:`SweepManifest.merge` — disjoint
  round-robin split, fingerprint carriage, state-precedence union,
  fingerprint-mismatch rejection, empty shards;
* the summary/CLI surface — quarantined entries reported separately
  from totals, ``cache ls --json`` / ``cache verify --json`` emit
  parseable JSONL with unchanged exit codes, and ``cache merge`` wires
  it all together from the shell.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.backends import (
    LocalJsonBackend,
    MergeReport,
    SqliteBackend,
    StoreCorruption,
    StoreMergeConflict,
    canonical_digest,
    detect_backend,
    make_backend,
    merge_stores,
)
from repro.experiments.parallel import GridCell, grid_cells, run_grid
from repro.experiments.resilience import (
    DONE,
    FAILED,
    PENDING,
    ManifestMismatchError,
    SweepManifest,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.store import (
    ResultStore,
    cell_key,
    scenario_fingerprint,
)

#: The pinned digest of the tiny fixture's (DSR-ODPM, 2 Kbit/s, seed 1)
#: cell — the same constant the orchestration and resilience suites pin
#: their contract legs on.  The merged leg must reproduce it bit for bit
#: regardless of which backend cached the shard.
TINY_CELL_DIGEST = (
    "d038f4c678d5f4e86895ea42fa481e55b91603ff1abe311a95bff03765dfc914"
)

PINNED_CELL = GridCell("DSR-ODPM", 2.0, 1)


def _tiny() -> Scenario:
    """The same 3x3 grid the orchestration tests pin their digest on."""
    return Scenario(
        name="tiny-test",
        node_count=9,
        field_size=120.0,
        flow_count=3,
        rates_kbps=(2.0, 4.0),
        duration=10.0,
        runs=2,
        grid=True,
        protocols=("DSR-ODPM",),
    )


@pytest.fixture(scope="module")
def tiny() -> Scenario:
    return _tiny()


@pytest.fixture(scope="module")
def tiny_results(tiny):
    """All four tiny-grid cells, simulated once for the whole module."""
    return run_grid(tiny, grid_cells(tiny))


def _fill_store(store: ResultStore, tiny, results, cells=None) -> None:
    """Cache ``results`` (optionally a cell subset) the way a sweep would."""
    fingerprint = scenario_fingerprint(tiny)
    for cell, result in sorted(results.items()):
        if cells is not None and cell not in cells:
            continue
        store.put_run(
            cell_key(tiny, cell.protocol, cell.rate_kbps, cell.seed),
            result,
            fingerprint=fingerprint,
        )


def _tree_bytes(root) -> dict[str, bytes]:
    """Every file under ``root`` as relative-path -> contents."""
    out = {}
    for directory, _dirs, files in os.walk(root):
        for name in files:
            path = os.path.join(directory, name)
            with open(path, "rb") as handle:
                out[os.path.relpath(path, root)] = handle.read()
    return out


def _entry(key: str, value: int) -> dict:
    """A minimal sound store entry for layout-level tests."""
    payload = {"value": value}
    return {"key": key, "result": payload, "digest": canonical_digest(payload)}


def _route_entry(key: str, value: int) -> dict:
    """A sound *routes* entry — verification never payload-decodes these."""
    payload = {"value": value}
    return {"key": key, "routes": payload, "digest": canonical_digest(payload)}


KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "0" * 62


class TestLocalJsonBackend:
    def test_layout_and_bytes_are_the_historical_ones(self, tmp_path):
        """Path shape and file bytes must not move under the refactor —
        a pre-backend cache directory must read back unchanged."""
        store = ResultStore(tmp_path)
        assert isinstance(store.backend, LocalJsonBackend)
        entry = _entry(KEY_A, 1)
        store._write("runs", KEY_A, entry)
        path = store._path("runs", KEY_A)
        assert path == tmp_path / "runs" / "aa" / ("%s.json" % KEY_A)
        # Exactly json.dump(entry, sort_keys=True) with default separators.
        assert path.read_text() == json.dumps(entry, sort_keys=True)

    def test_quarantine_is_a_rename(self, tmp_path):
        store = ResultStore(tmp_path)
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        assert store.backend.quarantine("runs", KEY_A)
        assert not store._path("runs", KEY_A).exists()
        assert store._path("runs", KEY_A).with_name(
            "%s.json.quarantine" % KEY_A
        ).exists()
        assert store.backend.quarantined("runs") == [KEY_A]
        assert store.backend.keys("runs") == []

    def test_get_raises_corruption_on_garbage(self, tmp_path):
        backend = LocalJsonBackend(tmp_path)
        backend.put("runs", KEY_A, _entry(KEY_A, 1))
        backend.path("runs", KEY_A).write_text("{torn")
        with pytest.raises(StoreCorruption):
            backend.get("runs", KEY_A)
        backend.path("runs", KEY_A).write_text("[1, 2]")
        with pytest.raises(StoreCorruption):
            backend.get("runs", KEY_A)
        assert backend.get("runs", KEY_B) is None  # absent: None, no raise


class TestSqliteBackend:
    def test_round_trip_and_counts(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        assert isinstance(store.backend, SqliteBackend)
        entry = _entry(KEY_A, 1)
        store._write("runs", KEY_A, entry)
        store._write("routes", KEY_B, _entry(KEY_B, 2))
        assert store._read("runs", KEY_A) == entry
        assert store.keys("runs") == [KEY_A]
        assert dict(store.entries("runs")) == {KEY_A: entry}
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0

    def test_one_file_per_campaign(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        files = {p.name for p in tmp_path.iterdir() if p.is_file()}
        assert "store.sqlite" in files  # the whole campaign, one artifact

    def test_detected_on_reopen(self, tmp_path):
        ResultStore(tmp_path, backend="sqlite")._write(
            "runs", KEY_A, _entry(KEY_A, 1)
        )
        assert detect_backend(tmp_path) == "sqlite"
        reopened = ResultStore(tmp_path)  # no backend argument
        assert isinstance(reopened.backend, SqliteBackend)
        assert reopened.keys("runs") == [KEY_A]
        assert detect_backend(tmp_path / "fresh") == "local-json"

    def test_quarantine_is_a_flag_not_a_delete(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        assert store.backend.quarantine("runs", KEY_A)
        assert store.backend.get("runs", KEY_A) is None
        assert store.backend.keys("runs") == []
        assert store.backend.quarantined("runs") == [KEY_A]
        assert not store.backend.quarantine("runs", KEY_A)  # already set

    def test_corrupt_row_quarantined_on_read(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        connection = store.backend._connect()
        connection.execute("UPDATE entries SET entry = '{torn'")
        connection.commit()
        assert store._read("runs", KEY_A) is None
        assert store.quarantined == 1
        assert store.misses == 1
        assert store.backend.quarantined("runs") == [KEY_A]

    def test_container_corruption_fails_verification(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        store.backend.close()
        (tmp_path / "store.sqlite").write_bytes(b"not a database at all")
        fresh = ResultStore(tmp_path)
        report = fresh.verify_sample()
        assert any(key == "(storage)" for key, _why in report["failures"])

    def test_unknown_backend_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            make_backend(tmp_path, "carrier-pigeon")


class TestBackendParity:
    """Keys and digests are content properties, not storage properties."""

    def test_same_runs_same_digests_both_backends(
        self, tmp_path, tiny, tiny_results
    ):
        json_store = ResultStore(tmp_path / "json")
        sqlite_store = ResultStore(tmp_path / "sqlite", backend="sqlite")
        _fill_store(json_store, tiny, tiny_results)
        _fill_store(sqlite_store, tiny, tiny_results)
        assert json_store.keys("runs") == sqlite_store.keys("runs")
        for key in json_store.keys("runs"):
            json_entry = json_store.backend.get("runs", key)
            sqlite_entry = sqlite_store.backend.get("runs", key)
            assert json_entry == sqlite_entry
        pinned_key = cell_key(
            tiny, PINNED_CELL.protocol, PINNED_CELL.rate_kbps, PINNED_CELL.seed
        )
        assert (
            sqlite_store.backend.get("runs", pinned_key)["digest"]
            == TINY_CELL_DIGEST
        )

    def test_warm_sqlite_cache_serves_hits(self, tmp_path, tiny, tiny_results):
        store = ResultStore(tmp_path, backend="sqlite")
        _fill_store(store, tiny, tiny_results)
        warm = ResultStore(tmp_path)  # auto-detected sqlite
        for cell, result in tiny_results.items():
            key = cell_key(tiny, cell.protocol, cell.rate_kbps, cell.seed)
            cached = warm.get_run(key)
            assert cached is not None
            assert cached.to_payload() == result.to_payload()
        assert warm.hits == len(tiny_results)
        assert warm.misses == 0


class TestMergeStores:
    def test_mixed_backend_shards_merge_byte_identical(
        self, tmp_path, tiny, tiny_results
    ):
        """The sixth contract leg: a campaign sharded across a JSON store
        and a sqlite store merges into a directory byte-identical to the
        single-machine reference sweep, pinned digest included."""
        reference = ResultStore(tmp_path / "reference")
        _fill_store(reference, tiny, tiny_results)

        cells = sorted(tiny_results)
        shard_json = ResultStore(tmp_path / "shard-json")
        shard_sqlite = ResultStore(tmp_path / "shard-sqlite", backend="sqlite")
        _fill_store(shard_json, tiny, tiny_results, cells=set(cells[::2]))
        _fill_store(shard_sqlite, tiny, tiny_results, cells=set(cells[1::2]))

        dest = ResultStore(tmp_path / "merged")
        report = merge_stores([shard_json, shard_sqlite], dest)
        assert report.merged == len(tiny_results)
        assert report.identical == report.corrupt == 0
        assert _tree_bytes(tmp_path / "merged") == _tree_bytes(
            tmp_path / "reference"
        )
        pinned_key = cell_key(
            tiny, PINNED_CELL.protocol, PINNED_CELL.rate_kbps, PINNED_CELL.seed
        )
        assert (
            dest.backend.get("runs", pinned_key)["digest"] == TINY_CELL_DIGEST
        )

    def test_identical_overlap_is_fine_and_idempotent(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b", backend="sqlite")
        dest = ResultStore(tmp_path / "dest")
        a.backend.put("runs", KEY_A, _entry(KEY_A, 1))
        b.backend.put("runs", KEY_A, _entry(KEY_A, 1))  # same bytes
        b.backend.put("runs", KEY_B, _entry(KEY_B, 2))
        report = merge_stores([a, b], dest)
        assert report.merged == 2
        assert report.identical == 1
        again = merge_stores([a, b], dest)
        assert again.merged == 0
        assert again.identical == 3

    def test_conflicting_digests_raise_naming_the_key(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        dest = ResultStore(tmp_path / "dest")
        dest.backend.put("runs", KEY_A, _entry(KEY_A, 1))
        a.backend.put("runs", KEY_A, _entry(KEY_A, 99))  # divergent payload
        with pytest.raises(StoreMergeConflict) as excinfo:
            merge_stores([a], dest)
        assert excinfo.value.key == KEY_A
        assert KEY_A in str(excinfo.value)
        # The sound pre-existing entry is untouched.
        assert dest.backend.get("runs", KEY_A) == _entry(KEY_A, 1)

    def test_corrupt_source_entries_are_never_inherited(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        a.backend.put("runs", KEY_A, _entry(KEY_A, 1))
        rotten = _entry(KEY_B, 2)
        rotten["digest"] = "0" * 64  # recorded digest no longer matches
        a.backend.put("runs", KEY_B, rotten)
        dest = ResultStore(tmp_path / "dest")
        report = merge_stores([a], dest)
        assert report.merged == 1
        assert report.corrupt == 1
        assert dest.backend.get("runs", KEY_B) is None

    def test_merge_report_renders(self):
        report = MergeReport(sources=2, merged=1, identical=3, by_kind={"runs": 1})
        text = str(report)
        assert "1 entry" in text and "3 identical" in text


def _manifest(tmp_path, name, fingerprint, states):
    manifest = SweepManifest(tmp_path / name, fingerprint, states)
    manifest.flush()
    return manifest


FP_A = {"name": "campaign-a", "version": 3}
FP_B = {"name": "campaign-b", "version": 3}


class TestManifestShardMerge:
    def test_shard_is_a_disjoint_round_robin_partition(self, tmp_path):
        states = {
            "P|%r|%d" % (rate, seed): {"state": DONE}
            for rate in (2.0, 4.0)
            for seed in (1, 2, 3)
        }
        parent = _manifest(tmp_path, "campaign.json", FP_A, states)
        shards = parent.shard(2)
        assert [s.path.name for s in shards] == [
            "campaign.shard-1-of-2.json",
            "campaign.shard-2-of-2.json",
        ]
        seen: list[str] = []
        for shard in shards:
            assert shard.path.is_file()  # flushed: ready to hand off
            assert shard.fingerprint == FP_A
            seen.extend(shard._states)
        assert sorted(seen) == sorted(states)  # disjoint, complete
        sizes = sorted(len(s._states) for s in shards)
        assert sizes == [3, 3]  # balanced

    def test_shard_count_validation(self, tmp_path):
        parent = _manifest(tmp_path, "m.json", FP_A, {})
        with pytest.raises(ValueError):
            parent.shard(0)

    def test_merge_overlapping_done_cells_is_fine(self, tmp_path):
        a = _manifest(tmp_path, "a.json", FP_A, {"c1": {"state": DONE}})
        b = _manifest(tmp_path, "b.json", FP_A, {"c1": {"state": DONE}})
        merged = SweepManifest.merge([a, b], tmp_path / "merged.json")
        assert merged.fingerprint == FP_A
        assert merged._states == {"c1": {"state": DONE}}
        assert merged.path.is_file()  # flushed
        assert SweepManifest.load(merged.path)._states == merged._states

    def test_merge_state_precedence_done_beats_failed_beats_pending(
        self, tmp_path
    ):
        a = _manifest(
            tmp_path, "a.json", FP_A,
            {
                "c1": {"state": FAILED, "cause": "boom", "attempts": 2},
                "c2": {"state": PENDING},
                "c3": {"state": DONE},
            },
        )
        b = _manifest(
            tmp_path, "b.json", FP_A,
            {
                "c1": {"state": DONE},
                "c2": {"state": FAILED, "cause": "zap", "attempts": 1},
                "c3": {"state": PENDING},
            },
        )
        merged = SweepManifest.merge([a, b], tmp_path / "m.json")
        assert merged._states["c1"] == {"state": DONE}
        assert merged._states["c2"]["state"] == FAILED
        assert merged._states["c2"]["cause"] == "zap"
        assert merged._states["c3"] == {"state": DONE}

    def test_merge_mismatched_fingerprints_raise(self, tmp_path):
        a = _manifest(tmp_path, "a.json", FP_A, {"c1": {"state": DONE}})
        b = _manifest(tmp_path, "b.json", FP_B, {"c2": {"state": DONE}})
        with pytest.raises(ManifestMismatchError, match="different campaigns"):
            SweepManifest.merge([a, b], tmp_path / "m.json")

    def test_merge_with_empty_shard(self, tmp_path):
        a = _manifest(tmp_path, "a.json", FP_A, {"c1": {"state": DONE}})
        empty = _manifest(tmp_path, "empty.json", None, {})
        merged = SweepManifest.merge([a, empty], tmp_path / "m.json")
        assert merged.fingerprint == FP_A
        assert merged._states == {"c1": {"state": DONE}}
        # All-empty merge: no fingerprint, no cells, still a valid manifest.
        blank = SweepManifest.merge([empty], tmp_path / "blank.json")
        assert blank.fingerprint is None
        assert blank.counts() == {PENDING: 0, DONE: 0, FAILED: 0}


class TestQuarantinedInSummary:
    def test_totals_exclude_quarantined_reported_separately(self, tmp_path):
        store = ResultStore(tmp_path)
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        store._write("runs", KEY_B, _entry(KEY_B, 2))
        store.backend.quarantine("runs", KEY_B)
        section = store.summary()["runs"]
        assert section["total"] == 1
        assert section["quarantined"] == 1
        assert len(store) == 1

    def test_cache_ls_text_reports_quarantined(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        store.backend.quarantine("runs", KEY_A)
        assert cli_main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runs    0 entries  (+1 quarantined" in out


class TestCliJsonAndMerge:
    def test_cache_ls_json_is_one_object_per_line(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store._write("runs", KEY_A, _entry(KEY_A, 1))
        store._write("runs", KEY_B, _entry(KEY_B, 2))
        store.backend.quarantine("runs", KEY_B)
        assert cli_main(
            ["cache", "ls", "--cache-dir", str(tmp_path), "--json"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [row["kind"] for row in rows] == ["runs", "routes"]
        assert rows[0]["total"] == 1
        assert rows[0]["quarantined"] == 1
        assert rows[1] == {"kind": "routes", "total": 0, "quarantined": 0,
                           "scenarios": {}}

    def test_cache_ls_json_missing_dir_is_empty(self, tmp_path, capsys):
        assert cli_main(
            ["cache", "ls", "--cache-dir", str(tmp_path / "nope"), "--json"]
        ) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert all(row["total"] == 0 for row in rows)
        assert not (tmp_path / "nope").exists()  # still never created

    def test_cache_verify_json_healthy(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store._write("routes", KEY_A, _route_entry(KEY_A, 1))
        assert cli_main(
            ["cache", "verify", "--cache-dir", str(tmp_path), "--json"]
        ) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["checked"] == 1
        assert verdict["ok"] == 1
        assert verdict["failures"] == []

    def test_cache_verify_json_corruption_still_exits_1(
        self, tmp_path, capsys
    ):
        store = ResultStore(tmp_path)
        store._write("routes", KEY_A, _route_entry(KEY_A, 1))
        store._path("routes", KEY_A).write_text("{torn")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                ["cache", "verify", "--cache-dir", str(tmp_path), "--json"]
            )
        assert excinfo.value.code == 1
        verdict = json.loads(capsys.readouterr().out)
        assert len(verdict["failures"]) == 1

    def test_cache_merge_cli_round_trip(self, tmp_path, capsys):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b", backend="sqlite")
        a.backend.put("runs", KEY_A, _entry(KEY_A, 1))
        b.backend.put("runs", KEY_B, _entry(KEY_B, 2))
        ma = _manifest(tmp_path, "ma.json", FP_A, {"c1": {"state": DONE}})
        mb = _manifest(tmp_path, "mb.json", FP_A, {"c2": {"state": DONE}})
        assert cli_main([
            "cache", "merge", str(tmp_path / "a"), str(tmp_path / "b"),
            str(tmp_path / "dest"),
            "--manifests", str(ma.path), str(mb.path),
        ]) == 0
        out = capsys.readouterr().out
        assert "merged 2 entries" in out
        dest = ResultStore(tmp_path / "dest")
        assert len(dest) == 2
        merged_manifest = SweepManifest.load(
            str(tmp_path / "dest") + ".manifest.json"
        )
        assert merged_manifest.counts()[DONE] == 2
        # The merged manifest lives next to the store, not inside it.
        assert not (tmp_path / "dest" / "dest.manifest.json").exists()

    def test_cache_merge_cli_conflict_exits_1(self, tmp_path, capsys):
        a = ResultStore(tmp_path / "a")
        dest = ResultStore(tmp_path / "dest")
        a.backend.put("runs", KEY_A, _entry(KEY_A, 1))
        dest.backend.put("runs", KEY_A, _entry(KEY_A, 2))
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "cache", "merge", str(tmp_path / "a"), str(tmp_path / "dest"),
            ])
        assert "merge conflict" in str(excinfo.value)
        assert KEY_A in str(excinfo.value)

    def test_cache_merge_cli_rejects_missing_source(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            cli_main([
                "cache", "merge", str(tmp_path / "nope"),
                str(tmp_path / "dest"),
            ])
        assert not (tmp_path / "dest").exists()
