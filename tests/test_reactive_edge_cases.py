"""Edge-case tests for the reactive framework internals."""

import pytest

from repro.core.radio import PowerMode
from repro.net.topology import Placement
from repro.routing.base import RouteCache, SendBuffer
from repro.routing.reactive import (
    DISCOVERY_ATTEMPTS,
    RouteRequest,
    SourceRoute,
)
from repro.sim.engine import Simulator
from repro.sim.packet import make_data_packet
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


class TestRouteCache:
    def test_expiry(self):
        sim = Simulator()
        cache = RouteCache(sim, timeout=10.0)
        cache.offer(5, (1, 2, 5), cost=3.0)
        assert cache.get(5) is not None
        sim.schedule(11.0, lambda: None)
        sim.run()
        assert cache.get(5) is None
        assert len(cache) == 0

    def test_cheaper_route_replaces(self):
        sim = Simulator()
        cache = RouteCache(sim)
        assert cache.offer(5, (1, 2, 3, 5), cost=3.0)
        assert cache.offer(5, (1, 4, 5), cost=2.0)
        assert cache.get(5).path == (1, 4, 5)

    def test_pricier_route_rejected(self):
        sim = Simulator()
        cache = RouteCache(sim)
        cache.offer(5, (1, 4, 5), cost=2.0)
        assert not cache.offer(5, (1, 2, 3, 5), cost=9.0)
        assert cache.get(5).path == (1, 4, 5)

    def test_invalidate_link_both_directions(self):
        sim = Simulator()
        cache = RouteCache(sim)
        cache.offer(5, (1, 2, 5), cost=1.0)
        cache.offer(7, (1, 5, 2, 7), cost=1.0)  # uses 5-2 (reverse)
        cache.offer(9, (1, 3, 9), cost=1.0)
        broken = cache.invalidate_link(2, 5)
        assert sorted(broken) == [5, 7]
        assert cache.get(9) is not None

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            RouteCache(Simulator(), timeout=0.0)


class TestSendBuffer:
    def test_overflow_drops_oldest(self):
        buffer = SendBuffer(capacity_per_destination=2)
        packets = [
            make_data_packet(origin=0, final_dst=9, src=0, dst=0, seqno=i)
            for i in range(3)
        ]
        for packet in packets:
            buffer.push(9, packet)
        assert buffer.dropped_overflow == 1
        kept = buffer.pop_all(9)
        assert [p.seqno for p in kept] == [1, 2]

    def test_per_destination_isolation(self):
        buffer = SendBuffer(capacity_per_destination=1)
        buffer.push(1, make_data_packet(origin=0, final_dst=1, src=0, dst=0))
        buffer.push(2, make_data_packet(origin=0, final_dst=2, src=0, dst=0))
        assert buffer.dropped_overflow == 0
        assert buffer.pending(1) == 1
        assert buffer.pending(2) == 1

    def test_drop_all_counts(self):
        buffer = SendBuffer()
        for i in range(3):
            buffer.push(9, make_data_packet(origin=0, final_dst=9, src=0,
                                            dst=0, seqno=i))
        assert buffer.drop_all(9) == 3
        assert buffer.pending(9) == 0

    def test_peek_does_not_remove(self):
        buffer = SendBuffer()
        buffer.push(9, make_data_packet(origin=0, final_dst=9, src=0, dst=0))
        assert len(buffer.peek_all(9)) == 1
        assert buffer.pending(9) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SendBuffer(capacity_per_destination=0)


class TestDiscoveryFailure:
    def test_unreachable_destination_drops_after_retries(self):
        """Node 9 is isolated: discovery must exhaust and drop cleanly."""
        placement = Placement(
            {0: (0.0, 0.0), 1: (150.0, 0.0), 9: (3000.0, 0.0)},
            3000.0, 1.0,
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=9,
                          rate_bps=4000.0, start=1.0)]
        net = build_network(placement, "DSR-Active", flows, duration=30.0)
        result = net.run()
        routing = net.nodes[0].routing
        assert result.delivery_ratio == 0.0
        assert routing.stats.data_dropped_no_route > 0
        # Discovery retried the configured number of times, then gave up
        # (later packets restart discovery, so the count is a multiple).
        assert routing.stats.rreq_sent >= DISCOVERY_ATTEMPTS

    def test_flow_to_unreachable_does_not_break_other_flows(self):
        placement = Placement(
            {0: (0.0, 0.0), 1: (150.0, 0.0), 9: (3000.0, 0.0)},
            3000.0, 1.0,
        )
        flows = [
            FlowSpec(flow_id=0, source=0, destination=9, rate_bps=4000.0,
                     start=1.0),
            FlowSpec(flow_id=1, source=0, destination=1, rate_bps=4000.0,
                     start=1.0),
        ]
        net = build_network(placement, "DSR-Active", flows, duration=20.0)
        result = net.run()
        assert result.flows[1].delivery_ratio > 0.95


class TestRreqProcessing:
    @pytest.fixture
    def net(self):
        placement = Placement(
            {0: (0.0, 0.0), 1: (150.0, 0.0), 2: (300.0, 0.0)}, 300.0, 1.0
        )
        flows = [FlowSpec(flow_id=0, source=0, destination=2,
                          rate_bps=2000.0, start=1.0)]
        return build_network(placement, "DSR-Active", flows, duration=5.0)

    def test_node_ignores_rreq_already_containing_it(self, net):
        routing = net.nodes[1].routing
        looped = RouteRequest(origin=0, target=2, request_id=1,
                              path=(0, 1), cost=1.0)
        before = routing.stats.rreq_forwarded
        packet = make_data_packet(origin=0, final_dst=2, src=0, dst=1)
        routing._on_rreq(looped, packet)
        assert routing.stats.rreq_forwarded == before

    def test_node_ignores_own_flood(self, net):
        routing = net.nodes[0].routing
        own = RouteRequest(origin=0, target=2, request_id=1,
                           path=(0,), cost=0.0)
        before = routing.stats.rreq_forwarded
        routing._on_rreq(own, make_data_packet(origin=0, final_dst=2,
                                               src=0, dst=0))
        assert routing.stats.rreq_forwarded == before

    def test_worse_duplicate_suppressed_better_rebroadcast(self, net):
        routing = net.nodes[1].routing
        first = RouteRequest(origin=0, target=2, request_id=7,
                             path=(0,), cost=5.0)
        packet = make_data_packet(origin=0, final_dst=2, src=0, dst=1)
        routing._on_rreq(first, packet)
        after_first = routing.stats.rreq_forwarded
        assert after_first == 1
        worse = RouteRequest(origin=0, target=2, request_id=7,
                             path=(0,), cost=50.0)
        routing._on_rreq(worse, packet)
        assert routing.stats.rreq_forwarded == after_first
        # DSR's hop-count metric can't improve, but a cost-carrying copy
        # with a strictly lower accumulated cost must be re-flooded.
        better = RouteRequest(origin=0, target=2, request_id=7,
                              path=(0,), cost=1.0)
        routing._on_rreq(better, packet)
        assert routing.stats.rreq_forwarded == after_first + 1


class TestSourceRoute:
    def test_advancing(self):
        header = SourceRoute(path=(0, 1, 2, 3), index=0)
        assert header.next_hop == 1
        advanced = header.advanced()
        assert advanced.index == 1
        assert advanced.next_hop == 2
        assert header.index == 0  # immutable

    def test_rate_carried(self):
        header = SourceRoute(path=(0, 1), index=0, rate=4000.0)
        assert header.advanced().rate == 4000.0
