"""Resilient sweep campaigns: retries, resume, interruption, self-healing.

Covers the contracts the resilience layer adds on top of the PR 1/5
orchestrator:

* :class:`FaultPolicy` — validation, deterministic exponential backoff;
* worker-crash recovery — real ``os._exit`` deaths injected via
  ``REPRO_FAULT_INJECT``, retried under a rebuilt pool to results
  byte-identical with an undisturbed serial run (the five-way contract's
  hardest leg), plus the retry-exhausted paths in both error modes;
* the cell-timeout watchdog against genuinely-wedged workers;
* ``continue`` mode — healthy cells finish, failed cells are reported
  with their cause/attempt count, a poisoned batch sheds only its bad
  seed;
* :class:`GridCellError` carrying the original traceback text across the
  process-pool boundary;
* :class:`SweepManifest` round-trip, fingerprint guarding, and
  interrupted-then-resumed determinism (pinned against the recorded
  TINY digest from ``tests/test_orchestration.py``);
* the self-healing store — corrupt entries quarantined on read and in
  bulk via ``verify --repair``, stale temp files reaped;
* the CLI surface: exit 130 on interrupt, exit 1 + failure report under
  ``--continue-on-error``, ``--manifest``/``--resume`` round-trip.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import time

import pytest

from repro.cli import main as cli_main
from repro.experiments.parallel import (
    GridBatch,
    GridCell,
    GridCellError,
    ProgressReporter,
    _split_batch,
    grid_cells,
    run_grid,
)
from repro.experiments.resilience import (
    FAULT_INJECT_ENV,
    INTERRUPT_EXIT_CODE,
    CellFailure,
    FaultPolicy,
    InterruptGuard,
    ManifestMismatchError,
    SweepFailureReport,
    SweepInterrupted,
    SweepManifest,
)
from repro.experiments.runner import run_many
from repro.experiments.scenarios import Scenario
from repro.experiments.store import ResultStore, cell_key

#: The pinned digest of the tiny fixture's (DSR-ODPM, 2 Kbit/s, seed 1)
#: cell — the same constant ``tests/test_orchestration.py`` pins the
#: four-way contract against.  The resilience legs below (crashed-and-
#: retried, interrupted-then-resumed) must reproduce it bit for bit.
TINY_CELL_DIGEST = (
    "d038f4c678d5f4e86895ea42fa481e55b91603ff1abe311a95bff03765dfc914"
)

PINNED_CELL = GridCell("DSR-ODPM", 2.0, 1)


@pytest.fixture
def tiny() -> Scenario:
    """The same 3x3 grid the orchestration tests pin their digest on."""
    return Scenario(
        name="tiny-test",
        node_count=9,
        field_size=120.0,
        flow_count=3,
        rates_kbps=(2.0, 4.0),
        duration=10.0,
        runs=2,
        grid=True,
        protocols=("DSR-ODPM",),
    )


def _digest(result) -> str:
    canonical = json.dumps(
        result.to_payload(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _digests(results) -> dict:
    return {cell: _digest(result) for cell, result in results.items()}


@pytest.fixture
def serial_digests(tiny):
    """Reference digests from an undisturbed serial, unbatched run."""
    return _digests(run_grid(tiny, grid_cells(tiny)))


def _arm_faults(monkeypatch, tmp_path, spec: str):
    """Point REPRO_FAULT_INJECT at a fresh marker dir; returns the dir."""
    directory = tmp_path / "faults"
    monkeypatch.setenv(FAULT_INJECT_ENV, "%s%s" % (directory, spec))
    return directory


class TestFaultPolicy:
    def test_defaults_are_the_pre_resilience_contract(self):
        policy = FaultPolicy()
        assert policy.max_retries == 0
        assert policy.cell_timeout_s is None
        assert not policy.continue_on_error

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"cell_timeout_s": 0.0},
            {"cell_timeout_s": -5.0},
            {"on_error": "explode"},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)

    def test_backoff_is_deterministic_and_exponential(self):
        policy = FaultPolicy(max_retries=3, backoff_base_s=0.5)
        first = policy.backoff_delay(1, "cell-a")
        assert first == policy.backoff_delay(1, "cell-a")  # no entropy
        assert 0.5 <= first < 0.5 * 1.25
        second = policy.backoff_delay(2, "cell-a")
        assert 1.0 <= second < 1.0 * 1.25
        assert policy.backoff_delay(0, "cell-a") == 0.0

    def test_backoff_jitter_depends_on_the_key(self):
        policy = FaultPolicy(backoff_base_s=0.5)
        assert policy.backoff_delay(1, "cell-a") != policy.backoff_delay(
            1, "cell-b"
        )


class TestTracebackAcrossPool:
    """Satellite: the original exception site survives pickling."""

    def test_from_exception_captures_the_traceback_text(self):
        try:
            raise ValueError("inner detail")
        except ValueError as exc:
            error = GridCellError.from_exception(GridCell("P", 2.0, 1), exc)
        assert "ValueError: inner detail" in error.cause_traceback
        assert "Traceback" in error.cause_traceback
        assert "test_resilience" in error.cause_traceback  # the real site

    def test_pickle_keeps_the_cause_traceback(self):
        try:
            raise ValueError("inner detail")
        except ValueError as exc:
            error = GridCellError.from_exception(GridCell("P", 2.0, 1), exc)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.cause_traceback == error.cause_traceback
        assert clone.cell == error.cell
        assert str(clone) == str(error)

    def test_two_argument_construction_still_works(self):
        """Pre-resilience callers (and old pickles) pass no traceback."""
        error = GridCellError(GridCell("P", 4.0, 3), "boom")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.cause_traceback is None
        assert clone.cause_summary == "boom"

    def test_worker_failure_names_the_real_site(self, tiny):
        """Across the pool boundary the report still shows the origin."""
        with pytest.raises(GridCellError) as excinfo:
            run_grid(
                tiny,
                [GridCell("NOPE", 2.0, 1), GridCell("NOPE", 2.0, 2)],
                jobs=2,
                batch=False,
            )
        assert excinfo.value.cause_traceback is not None
        assert "ValueError" in excinfo.value.cause_traceback
        assert "Traceback" in excinfo.value.cause_traceback

    def test_failure_report_line_includes_the_site(self):
        failure = CellFailure(
            cell=GridCell("P", 2.0, 1),
            cause="ValueError: boom",
            attempts=1,
            transient=False,
            detail=(
                "Traceback (most recent call last):\n"
                '  File "repro/sim/network.py", line 42, in run\n'
                "    raise ValueError('boom')\n"
                "ValueError: boom\n"
            ),
        )
        line = str(failure)
        assert "ValueError: boom" in line
        assert 'File "repro/sim/network.py", line 42' in line


class TestContinueOnError:
    def test_healthy_cells_complete_and_failures_are_reported(self, tiny):
        cells = [
            GridCell("DSR-ODPM", 2.0, 1),
            GridCell("NOPE", 2.0, 1),
            GridCell("DSR-ODPM", 4.0, 1),
        ]
        failures = SweepFailureReport()
        results = run_grid(
            tiny,
            cells,
            batch=False,
            policy=FaultPolicy(on_error="continue"),
            failures=failures,
        )
        assert set(results) == {cells[0], cells[2]}
        assert len(failures) == 1
        (failure,) = list(failures)
        assert failure.cell == GridCell("NOPE", 2.0, 1)
        assert failure.attempts == 1
        assert not failure.transient
        assert "NOPE" in failures.render()

    def test_fail_mode_is_unchanged(self, tiny):
        with pytest.raises(GridCellError):
            run_grid(
                tiny,
                [GridCell("NOPE", 2.0, 1)],
                policy=FaultPolicy(on_error="fail"),
            )

    def test_split_batch_sheds_only_the_poisoned_seed(self):
        unit = GridBatch("P", 2.0, (1, 2, 3))
        error = GridCellError(GridCell("P", 2.0, 2), "boom")
        (survivor,) = _split_batch(unit, error)
        assert survivor.seeds == (1, 3)
        assert _split_batch(GridBatch("P", 2.0, (2,)), error) == []

    def test_batched_continue_runs_the_siblings(self, tiny, monkeypatch, tmp_path):
        """A deterministic mid-batch failure costs one cell, not the batch."""
        _arm_faults(monkeypatch, tmp_path, ":99:error:2#1")
        failures = SweepFailureReport()
        results = run_grid(
            tiny,
            grid_cells(tiny),
            jobs=2,
            batch=True,
            policy=FaultPolicy(on_error="continue"),
            failures=failures,
        )
        # (2.0, seed 1) was poisoned; its batch sibling (2.0, seed 2) and
        # the whole 4.0 batch must still have completed.
        assert PINNED_CELL not in results
        assert GridCell("DSR-ODPM", 2.0, 2) in results
        assert GridCell("DSR-ODPM", 4.0, 1) in results
        assert GridCell("DSR-ODPM", 4.0, 2) in results
        assert [f.cell for f in failures] == [PINNED_CELL]
        assert "FaultInjected" in list(failures)[0].cause


class TestCrashRecovery:
    def test_retry_recovers_to_serial_digests(
        self, tiny, monkeypatch, tmp_path, serial_digests
    ):
        """Every cell's first execution dies via os._exit; retries heal.

        Each (protocol, rate) batch crashes at least twice (once per
        seed's first execution), so this is the acceptance row's
        ">= 2 injected worker crashes + retries" leg.  The generous
        retry budget absorbs collateral attempts: a pool collapse
        penalizes every in-flight unit, not just the guilty one.
        """
        faults = _arm_faults(monkeypatch, tmp_path, ":1")
        results = run_grid(
            tiny,
            grid_cells(tiny),
            jobs=2,
            batch=True,
            policy=FaultPolicy(max_retries=6, backoff_base_s=0.01),
        )
        markers = list(faults.iterdir())
        assert len(markers) >= 2  # at least two real worker deaths
        assert _digests(results) == serial_digests
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST

    def test_exhausted_retries_fail_fast_by_default(
        self, tiny, monkeypatch, tmp_path
    ):
        _arm_faults(monkeypatch, tmp_path, ":99")
        with pytest.raises(GridCellError) as excinfo:
            run_grid(
                tiny,
                grid_cells(tiny),
                jobs=2,
                policy=FaultPolicy(max_retries=0, backoff_base_s=0.01),
            )
        assert "crashed" in str(excinfo.value)

    def test_exhausted_retries_continue_mode_reports_transient(
        self, tiny, monkeypatch, tmp_path
    ):
        _arm_faults(monkeypatch, tmp_path, ":99")
        failures = SweepFailureReport()
        results = run_grid(
            tiny,
            grid_cells(tiny),
            jobs=2,
            policy=FaultPolicy(
                max_retries=0, backoff_base_s=0.01, on_error="continue"
            ),
            failures=failures,
        )
        assert results == {}
        assert sorted(failures.cells()) == sorted(grid_cells(tiny))
        for failure in failures:
            assert failure.transient
            assert failure.attempts == 1
            assert "crashed" in failure.cause

    def test_timeout_watchdog_reclaims_a_wedged_worker(
        self, tiny, monkeypatch, tmp_path
    ):
        """A cell that hangs forever is terminated and reported, siblings run."""
        _arm_faults(monkeypatch, tmp_path, ":99:hang:2#1")
        failures = SweepFailureReport()
        started = time.monotonic()
        results = run_grid(
            tiny,
            grid_cells(tiny),
            jobs=2,
            batch=False,
            policy=FaultPolicy(
                max_retries=1,
                backoff_base_s=0.01,
                cell_timeout_s=1.0,
                on_error="continue",
            ),
            failures=failures,
        )
        elapsed = time.monotonic() - started
        assert elapsed < 60.0  # never waited for the hour-long sleep
        assert PINNED_CELL not in results
        assert PINNED_CELL in [f.cell for f in failures]
        hung = next(f for f in failures if f.cell == PINNED_CELL)
        assert "timed out" in hung.cause
        assert hung.transient
        # The three healthy cells all completed despite collateral kills.
        assert set(results) == set(grid_cells(tiny)) - {PINNED_CELL}


class TestManifest:
    def test_round_trip_preserves_states(self, tiny, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = SweepManifest.open(path)
        cells = grid_cells(tiny)
        manifest.register(tiny, cells)
        manifest.mark_done(cells[0])
        manifest.mark_failed(cells[1], "ValueError: boom", attempts=2)
        clone = SweepManifest.load(path)
        assert clone.state(cells[0]) == "done"
        assert clone.state(cells[1]) == "failed"
        assert clone.state(cells[2]) == "pending"
        assert clone.counts() == {"pending": 2, "done": 1, "failed": 1}
        assert sorted(clone.cells()) == sorted(cells)

    def test_open_starts_empty_then_loads(self, tmp_path):
        path = tmp_path / "manifest.json"
        first = SweepManifest.open(path)
        assert first.counts() == {"pending": 0, "done": 0, "failed": 0}
        assert not path.exists()  # nothing flushed yet

    def test_register_degrades_done_to_pending(self, tiny, tmp_path):
        """The store, not the manifest, vouches for completed results."""
        path = tmp_path / "manifest.json"
        manifest = SweepManifest.open(path)
        cells = grid_cells(tiny)
        manifest.register(tiny, cells)
        manifest.mark_done(cells[0])
        resumed = SweepManifest.load(path)
        resumed.register(tiny, cells)
        assert resumed.state(cells[0]) == "pending"

    def test_register_rejects_a_different_scenario(self, tiny, tmp_path):
        from dataclasses import replace

        path = tmp_path / "manifest.json"
        manifest = SweepManifest.open(path)
        manifest.register(tiny, grid_cells(tiny))
        other = replace(tiny, duration=20.0)
        resumed = SweepManifest.load(path)
        with pytest.raises(ManifestMismatchError):
            resumed.register(other, grid_cells(other))

    def test_load_rejects_alien_files(self, tmp_path):
        path = tmp_path / "not-a-manifest.json"
        path.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            SweepManifest.load(path)

    def test_flush_is_atomic_no_tmp_left_behind(self, tiny, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = SweepManifest.open(path)
        manifest.register(tiny, grid_cells(tiny))
        assert path.exists()
        assert list(tmp_path.glob(".*.tmp")) == []


def _worker_signal_disposition():
    return (
        signal.getsignal(signal.SIGINT) is signal.SIG_IGN,
        signal.getsignal(signal.SIGTERM) is signal.SIG_DFL,
    )


class TestInterruptGuard:
    def test_pool_workers_shed_the_inherited_handler(self):
        """Forked workers must not inherit the parent's drain handler.

        SIGINT must be ignored (a terminal Ctrl-C hits the whole process
        group; the parent owns draining) and SIGTERM must stay lethal —
        the timeout watchdog and the executor's broken-pool cleanup both
        depend on it.
        """
        from concurrent.futures import ProcessPoolExecutor

        from repro.experiments.resilience import _mark_worker

        with InterruptGuard():
            with ProcessPoolExecutor(
                max_workers=1, initializer=_mark_worker
            ) as pool:
                ignored, lethal = pool.submit(
                    _worker_signal_disposition
                ).result()
        assert ignored and lethal
    def test_first_signal_sets_the_flag(self, capsys):
        with InterruptGuard() as guard:
            assert not guard.interrupted
            signal.raise_signal(signal.SIGINT)
            assert guard.interrupted  # flag, not an exception
        assert "draining" in capsys.readouterr().err

    def test_second_signal_aborts_immediately(self, capsys):
        with InterruptGuard() as guard:
            signal.raise_signal(signal.SIGINT)
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)
        assert guard.interrupted

    def test_handlers_are_restored_on_exit(self):
        before = signal.getsignal(signal.SIGINT)
        with InterruptGuard():
            assert signal.getsignal(signal.SIGINT) != before
        assert signal.getsignal(signal.SIGINT) == before


class TestInterruptedThenResumed:
    def test_five_way_contract_interrupted_leg(
        self, tiny, tmp_path, serial_digests
    ):
        """Interrupt after one cell, resume, match the serial digests.

        The interruption is triggered deterministically (the guard flag
        flips after the first completed cell), so this test pins the
        exact done/pending split rather than racing a real signal.
        """
        cells = grid_cells(tiny)
        store = ResultStore(tmp_path / "cache")
        manifest_path = tmp_path / "manifest.json"
        guard = InterruptGuard()

        class InterruptAfterFirst(ProgressReporter):
            def advance(self, label, cells=1):
                super().advance(label, cells=cells)
                guard.trigger()

        with pytest.raises(SweepInterrupted) as excinfo:
            run_grid(
                tiny,
                cells,
                batch=False,
                store=store,
                progress=InterruptAfterFirst(total=len(cells), enabled=False),
                manifest=SweepManifest.open(manifest_path),
                interrupt=guard,
            )
        assert excinfo.value.done == 1
        assert excinfo.value.total == len(cells)
        assert excinfo.value.manifest_path == str(manifest_path)

        checkpoint = SweepManifest.load(manifest_path)
        counts = checkpoint.counts()
        assert counts["done"] == 1
        assert counts["pending"] == len(cells) - 1

        resumed_store = ResultStore(tmp_path / "cache")
        resumed = run_grid(
            tiny,
            cells,
            batch=False,
            store=resumed_store,
            manifest=checkpoint,
            interrupt=InterruptGuard(),
        )
        assert resumed_store.hits == 1  # the pre-interrupt cell came back
        assert _digests(resumed) == serial_digests
        assert _digest(resumed[PINNED_CELL]) == TINY_CELL_DIGEST
        final = SweepManifest.load(manifest_path)
        assert final.counts()["done"] == len(cells)

    def test_crashed_campaign_resumes_to_serial_digests(
        self, tiny, monkeypatch, tmp_path, serial_digests
    ):
        """Crash-interrupted (no retries) then resumed-with-retries.

        First pass: every first execution crashes and the budget is
        zero, so the campaign fails; the store keeps whatever finished.
        Second pass: retries absorb the remaining injected crashes and
        the merged results are byte-identical to the serial reference.
        """
        faults = _arm_faults(monkeypatch, tmp_path, ":1")
        store = ResultStore(tmp_path / "cache")
        manifest_path = tmp_path / "manifest.json"
        with pytest.raises(GridCellError):
            run_grid(
                tiny,
                grid_cells(tiny),
                jobs=2,
                store=store,
                manifest=SweepManifest.open(manifest_path),
                policy=FaultPolicy(max_retries=0, backoff_base_s=0.01),
            )
        assert len(list(faults.iterdir())) >= 1

        resumed = run_grid(
            tiny,
            grid_cells(tiny),
            jobs=2,
            store=ResultStore(tmp_path / "cache"),
            manifest=SweepManifest.open(manifest_path),
            policy=FaultPolicy(max_retries=6, backoff_base_s=0.01),
        )
        assert len(list(faults.iterdir())) >= 2  # more deaths, absorbed
        assert _digests(resumed) == serial_digests
        assert _digest(resumed[PINNED_CELL]) == TINY_CELL_DIGEST


class TestSelfHealingStore:
    def _populate(self, tiny, root) -> tuple[ResultStore, str]:
        store = ResultStore(root)
        run_grid(tiny, [PINNED_CELL], store=store)
        return store, cell_key(tiny, "DSR-ODPM", 2.0, 1)

    def test_corrupt_entry_quarantined_on_read(self, tiny, tmp_path):
        store, key = self._populate(tiny, tmp_path)
        path = store._path("runs", key)
        raw = bytearray(path.read_bytes())
        start = raw.index(b'"result"')
        offset = next(
            i for i in range(start, len(raw)) if chr(raw[i]).isdigit()
        )
        raw[offset] ^= 0x01  # real bit rot: file still parses, digest wrong
        path.write_bytes(bytes(raw))

        fresh = ResultStore(tmp_path)
        assert fresh.get_run(key) is None  # miss, not corrupt data
        assert fresh.misses == 1
        assert fresh.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantine").exists()

    def test_quarantined_cell_transparently_reruns(
        self, tiny, tmp_path, serial_digests
    ):
        store, key = self._populate(tiny, tmp_path)
        path = store._path("runs", key)
        path.write_text("{ not json", encoding="utf-8")
        healer = ResultStore(tmp_path)
        results = run_grid(tiny, [PINNED_CELL], store=healer)
        assert healer.quarantined == 1
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST
        # The store holds a sound entry again.
        assert ResultStore(tmp_path).get_run(key) is not None

    def test_verify_repair_quarantines_in_bulk(self, tiny, tmp_path):
        store, key = self._populate(tiny, tmp_path)
        path = store._path("runs", key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["result"]["delivery_ratio"] = 0.5
        path.write_text(json.dumps(entry), encoding="utf-8")

        report = store.verify_sample(repair=True)
        assert len(report["failures"]) == 1
        assert report["quarantined"] == 1
        assert not path.exists()
        # A second verify pass sees a clean (empty) sample space.
        assert ResultStore(tmp_path).verify_sample()["failures"] == []

    def test_clean_tmp_reaps_only_stale_files(self, tiny, tmp_path):
        store, key = self._populate(tiny, tmp_path)
        bucket = store._path("runs", key).parent
        stale = bucket / ".deadbeef.12345.tmp"
        stale.write_text("{}", encoding="utf-8")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        fresh = bucket / ".cafebabe.12345.tmp"
        fresh.write_text("{}", encoding="utf-8")

        assert store.clean_tmp() == 1  # default horizon: stale only
        assert not stale.exists()
        assert fresh.exists()
        assert store.clean_tmp(older_than_s=0.0) == 1  # explicit: all
        assert not fresh.exists()

    def test_run_grid_reaps_stale_tmp_at_sweep_start(self, tiny, tmp_path):
        store, key = self._populate(tiny, tmp_path)
        bucket = store._path("runs", key).parent
        stale = bucket / ".deadbeef.12345.tmp"
        stale.write_text("{}", encoding="utf-8")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        run_grid(tiny, [PINNED_CELL], store=store)
        assert not stale.exists()


class TestCLI:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        def raises(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.fig7_curves", raises)
        assert cli_main(["fig7"]) == INTERRUPT_EXIT_CODE
        assert "interrupted" in capsys.readouterr().err

    def test_continue_on_error_sweep_reports_and_exits_1(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                [
                    "sweep", "--scenario", "grid", "--scale", "smoke",
                    "--protocols", "DSR-ODPM", "NOPE", "--rates", "2",
                    "--continue-on-error",
                ]
            )
        assert excinfo.value.code == 1
        captured = capsys.readouterr()
        assert "DSR-ODPM" in captured.out  # the healthy row printed
        assert "1 cell(s) failed" in captured.err
        assert "NOPE @ 2 Kbit/s, seed 1" in captured.err
        assert "attempt 1" in captured.err

    def test_manifest_resume_round_trip(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        manifest = tmp_path / "manifest.json"
        argv = [
            "sweep", "--scenario", "grid", "--scale", "smoke",
            "--protocols", "DSR-ODPM", "--rates", "2",
            "--cache-dir", str(cache), "--manifest", str(manifest),
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "1 done, 0 failed, 0 pending" in out

        resume_argv = argv[:-2] + ["--resume", str(manifest)]
        assert cli_main(resume_argv) == 0
        out = capsys.readouterr().out
        assert "1 hits, 0 misses, 0 new runs written" in out

    def test_resume_requires_an_existing_manifest(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                [
                    "sweep", "--scenario", "grid", "--scale", "smoke",
                    "--cache-dir", str(tmp_path / "cache"),
                    "--resume", str(tmp_path / "nope.json"),
                ]
            )
        assert "no sweep manifest" in str(excinfo.value)

    def test_manifest_requires_cache_dir(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(
                [
                    "sweep", "--scenario", "grid", "--scale", "smoke",
                    "--manifest", str(tmp_path / "manifest.json"),
                ]
            )
        assert "--cache-dir" in str(excinfo.value)

    def test_cache_verify_repair_heals_the_store(self, tmp_path, capsys):
        tiny = Scenario(
            name="tiny-test", node_count=9, field_size=120.0, flow_count=3,
            rates_kbps=(2.0, 4.0), duration=10.0, runs=2, grid=True,
            protocols=("DSR-ODPM",),
        )
        store = ResultStore(tmp_path)
        run_grid(tiny, [PINNED_CELL], store=store)
        key = cell_key(tiny, "DSR-ODPM", 2.0, 1)
        path = store._path("runs", key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["result"]["delivery_ratio"] = 0.5
        path.write_text(json.dumps(entry), encoding="utf-8")

        # Without --repair: corruption detected, exit 1, file untouched.
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["cache", "verify", "--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 1
        assert path.exists()
        capsys.readouterr()

        # With --repair: quarantined, exit 0, next verify is clean.
        assert cli_main(
            ["cache", "verify", "--cache-dir", str(tmp_path), "--repair"]
        ) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 corrupt entry" in out
        assert not path.exists()
        assert path.with_name(path.name + ".quarantine").exists()
        assert cli_main(
            ["cache", "verify", "--cache-dir", str(tmp_path)]
        ) == 0


class TestRunManyPolicy:
    def test_run_many_forwards_the_policy(self, tiny, monkeypatch, tmp_path):
        """A crashing cell heals inside run_many too, not just run_grid."""
        _arm_faults(monkeypatch, tmp_path, ":1")
        aggregate = run_many(
            tiny, "DSR-ODPM", 2.0, jobs=2,
            policy=FaultPolicy(max_retries=6, backoff_base_s=0.01),
        )
        reference = run_many(tiny, "DSR-ODPM", 2.0)
        assert aggregate == reference
