"""Tests for the centralized design heuristics and topology control."""

import networkx as nx
import pytest

from repro.core.design_problem import Demand
from repro.core.heuristics import (
    CommunicationFirstDesign,
    IdlingFirstDesign,
    JointOptimizationDesign,
    compare_heuristics,
)
from repro.core.radio import CABLETRON, HYPOTHETICAL_CABLETRON
from repro.core.topology_control import (
    backbone_subgraph,
    greedy_connected_dominating_set,
    prune_redundant_relays,
    relay_count,
)
from repro.net.topology import connectivity_graph, grid_placement


@pytest.fixture
def grid_graph():
    placement = grid_placement(7, 300.0, 300.0)
    return connectivity_graph(placement, HYPOTHETICAL_CABLETRON.max_range,
                              HYPOTHETICAL_CABLETRON)


@pytest.fixture
def grid_demands():
    return [Demand(row * 7, row * 7 + 6, rate=4000.0) for row in range(7)]


class TestCommunicationFirst:
    def test_uses_many_short_hops(self, grid_graph, grid_demands):
        design = CommunicationFirstDesign(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands
        ).design()
        # MTPR on a quartic path-loss model hops along lattice neighbors.
        for demand, path in design.routes.items():
            assert len(path) - 1 >= 4

    def test_mtpr_plus_uses_fewer_hops_than_mtpr(self, grid_graph, grid_demands):
        mtpr = CommunicationFirstDesign(
            grid_graph, CABLETRON, grid_demands, include_fixed_costs=False
        ).design()
        mtpr_plus = CommunicationFirstDesign(
            grid_graph, CABLETRON, grid_demands, include_fixed_costs=True
        ).design()
        hops = lambda d: sum(len(p) - 1 for p in d.routes.values())
        assert hops(mtpr_plus) < hops(mtpr)

    def test_every_demand_routed(self, grid_graph, grid_demands):
        design = CommunicationFirstDesign(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands
        ).design()
        for demand in grid_demands:
            path = design.routes[demand]
            assert path[0] == demand.source and path[-1] == demand.destination


class TestJointOptimization:
    def test_reuses_recruited_relays(self, grid_graph):
        """Two parallel demands should share relays once one is recruited."""
        demands = [Demand(0, 6, 4000.0), Demand(7, 13, 4000.0)]
        design = JointOptimizationDesign(
            grid_graph, CABLETRON, demands
        ).design()
        relays_0 = set(design.routes[demands[0]][1:-1])
        relays_1 = set(design.routes[demands[1]][1:-1])
        # Either the second demand reuses the first demand's relays or both
        # are direct (no relays at all, given Cabletron's range).
        assert relays_1 <= relays_0 | set(design.routes[demands[0]])

    def test_rate_awareness_changes_design_cost(self, grid_graph, grid_demands):
        rated = JointOptimizationDesign(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands, use_rate=True
        )
        unrated = JointOptimizationDesign(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands, use_rate=False
        )
        # Both produce valid designs; rate-aware never recruits more relays.
        rated_design = rated.design()
        unrated_design = unrated.design()
        assert len(rated_design.relays) <= len(unrated_design.relays)


class TestIdlingFirst:
    def test_recruits_fewest_relays(self, grid_graph, grid_demands):
        reports = compare_heuristics(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands, duration=10.0
        )
        assert (
            reports["idling-first"]["relays"]
            <= reports["joint-optimization"]["relays"]
        )
        assert (
            reports["idling-first"]["relays"]
            <= reports["communication-first"]["relays"]
        )

    def test_relay_penalty_validation(self, grid_graph, grid_demands):
        with pytest.raises(ValueError):
            IdlingFirstDesign(
                grid_graph, CABLETRON, grid_demands, relay_penalty=0.0
            )


class TestCompareHeuristics:
    def test_paper_ordering_at_low_rate(self, grid_graph, grid_demands):
        """At CBR-scale rates with ODPM accounting, idling-first wins and
        communication-first loses — the Fig. 14 ordering."""
        report = compare_heuristics(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands,
            duration=10.0, scheduling="odpm",
        )
        assert (
            report["idling-first"]["energy_goodput"]
            > report["communication-first"]["energy_goodput"]
        )

    def test_communication_first_wins_with_perfect_scheduling_high_rate(
        self, grid_graph
    ):
        """At very high rates with perfect sleeping, transmission energy
        dominates and short hops pay off — the Fig. 15 crossover."""
        demands = [Demand(r * 7, r * 7 + 6, rate=200_000.0) for r in range(7)]
        report = compare_heuristics(
            grid_graph, HYPOTHETICAL_CABLETRON, demands,
            duration=10.0, scheduling="perfect",
        )
        assert (
            report["communication-first"]["energy_goodput"]
            > report["idling-first"]["energy_goodput"]
        )

    def test_report_fields(self, grid_graph, grid_demands):
        report = compare_heuristics(
            grid_graph, HYPOTHETICAL_CABLETRON, grid_demands
        )
        for name in ("communication-first", "joint-optimization", "idling-first"):
            for key in ("relays", "e_network", "energy_goodput", "transmit_energy"):
                assert key in report[name]

    def test_empty_demands_rejected(self, grid_graph):
        with pytest.raises(ValueError):
            CommunicationFirstDesign(grid_graph, CABLETRON, [])


class TestTopologyControl:
    def test_cds_dominates_and_connects(self):
        placement = grid_placement(5, 200.0, 200.0)
        graph = connectivity_graph(placement, 71.0)  # lattice + diagonals
        cds = greedy_connected_dominating_set(graph)
        for node in graph.nodes:
            assert node in cds or any(n in cds for n in graph.neighbors(node))
        assert nx.is_connected(graph.subgraph(cds))

    def test_cds_smaller_than_graph(self):
        placement = grid_placement(5, 200.0, 200.0)
        graph = connectivity_graph(placement, 120.0)
        cds = greedy_connected_dominating_set(graph)
        assert len(cds) < graph.number_of_nodes()

    def test_cds_empty_graph(self):
        assert greedy_connected_dominating_set(nx.Graph()) == set()

    def test_cds_single_node(self):
        graph = nx.Graph()
        graph.add_node(7)
        assert greedy_connected_dominating_set(graph) == {7}

    def test_prune_redundant_relays(self):
        active = {1, 2, 3, 4}
        routes = [(1, 2), (2, 3)]
        assert prune_redundant_relays(active, routes) == {1, 2, 3}

    def test_backbone_subgraph_edges(self):
        graph = nx.path_graph(4)
        allowed = backbone_subgraph(graph, backbone={1, 2})
        assert allowed.has_edge(0, 1)
        assert allowed.has_edge(1, 2)
        assert allowed.has_edge(2, 3)
        # An edge with both endpoints outside the backbone is dropped.
        graph.add_edge(0, 3)
        allowed = backbone_subgraph(graph, backbone={1, 2})
        assert not allowed.has_edge(0, 3)

    def test_relay_count(self):
        routes = {0: (1, 2, 3), 1: (4, 2, 5)}
        assert relay_count(routes, endpoints={1, 3, 4, 5}) == 1
