"""Documentation guards: every public item carries a docstring.

Deliverable-level test: the README promises doc comments on every public
item; this test makes that claim falsifiable.  Private names (leading
underscore), dataclass-generated members and re-exports are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_MODULES = {"repro.__main__"}


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # Methods inherit intent from well-named one-liners in
                    # small protocol classes; require docstrings only on
                    # methods with real bodies (> 3 statements).
                    try:
                        source_lines = inspect.getsource(method).splitlines()
                    except OSError:  # pragma: no cover
                        continue
                    if len(source_lines) > 6:
                        undocumented.append("%s.%s" % (name, method_name))
    assert not undocumented, (
        "%s: undocumented public items: %s" % (module.__name__, undocumented)
    )


def test_public_api_documented():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, name
