"""Tests for the characteristic hop count analysis (§5.1, Eq. 15, Fig. 7)."""

import math

import pytest

from repro.core.analytical import (
    characteristic_hop_count,
    fig7_curves,
    minimum_alpha2_for_relaying,
    optimal_hop_count,
    relaying_saves_energy,
    route_energy,
)
from repro.core.radio import (
    AIRONET_350,
    CABLETRON,
    HYPOTHETICAL_CABLETRON,
    LEACH_N2,
    LEACH_N4,
    MICA2,
)


def eq15_by_hand(card, distance, utilization):
    """Independent implementation of Eq. 15 for cross-checking."""
    n = card.path_loss_exponent
    denom = card.p_base + card.p_rx + (
        (1 - 2 * utilization) / utilization
    ) * card.p_idle
    return distance * ((n - 1) * card.alpha2 / denom) ** (1.0 / n)


class TestEq15:
    @pytest.mark.parametrize("utilization", [0.1, 0.25, 0.4, 0.5])
    @pytest.mark.parametrize(
        "card,distance",
        [
            (CABLETRON, 250.0),
            (AIRONET_350, 140.0),
            (MICA2, 68.0),
            (LEACH_N4, 100.0),
            (LEACH_N2, 75.0),
            (HYPOTHETICAL_CABLETRON, 250.0),
        ],
    )
    def test_matches_hand_computation(self, card, distance, utilization):
        assert optimal_hop_count(card, distance, utilization) == pytest.approx(
            eq15_by_hand(card, distance, utilization)
        )

    def test_full_utilization_removes_idle_term(self):
        # At R/B = 0.5 the idle weight (1 - 2 R/B)/(R/B) vanishes.
        m = optimal_hop_count(CABLETRON, 250.0, 0.5)
        denom = CABLETRON.p_base + CABLETRON.p_rx
        expected = 250.0 * (3 * CABLETRON.alpha2 / denom) ** 0.25
        assert m == pytest.approx(expected)

    def test_monotone_in_utilization(self):
        # Higher utilization -> less idling weight -> relays look better.
        ms = [
            optimal_hop_count(CABLETRON, 250.0, u)
            for u in (0.1, 0.2, 0.3, 0.4, 0.5)
        ]
        assert ms == sorted(ms)

    def test_linear_in_distance(self):
        m1 = optimal_hop_count(CABLETRON, 100.0, 0.25)
        m2 = optimal_hop_count(CABLETRON, 200.0, 0.25)
        assert m2 == pytest.approx(2 * m1)

    def test_invalid_utilization_rejected(self):
        for bad in (0.0, -0.1, 0.51, 1.0):
            with pytest.raises(ValueError):
                optimal_hop_count(CABLETRON, 250.0, bad)

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            optimal_hop_count(CABLETRON, 0.0, 0.25)


class TestPaperClaims:
    """The headline results of §5.1."""

    def test_no_real_card_justifies_relaying(self):
        """m_opt < 2 for all real cards at all plotted utilizations."""
        for card, distance in [
            (CABLETRON, 250.0),
            (AIRONET_350, 140.0),
            (MICA2, 68.0),
            (LEACH_N4, 100.0),
            (LEACH_N2, 75.0),
        ]:
            for u in (0.1, 0.2, 0.3, 0.4, 0.5):
                assert optimal_hop_count(card, distance, u) < 2.0
                assert not relaying_saves_energy(card, distance, u)

    def test_hypothetical_cabletron_crosses_at_quarter_utilization(self):
        """alpha2 = 5.2e-6 mW/m^4 gives m_opt >= 2 at R/B = 0.25 (paper)."""
        assert optimal_hop_count(HYPOTHETICAL_CABLETRON, 250.0, 0.25) >= 2.0
        assert relaying_saves_energy(HYPOTHETICAL_CABLETRON, 250.0, 0.25)

    def test_minimum_alpha2_reproduces_5_16e6(self):
        """The paper derives alpha2 >= 5.16e-6 mW/m^4 for m_opt >= 2."""
        alpha2 = minimum_alpha2_for_relaying(CABLETRON, 250.0, 0.25)
        assert alpha2 == pytest.approx(5.16e-6 * 1e-3, rel=0.01)

    def test_minimum_alpha2_is_tight(self):
        alpha2 = minimum_alpha2_for_relaying(CABLETRON, 250.0, 0.25)
        below = CABLETRON.with_alpha2(alpha2 * 0.99)
        above = CABLETRON.with_alpha2(alpha2 * 1.01)
        assert optimal_hop_count(below, 250.0, 0.25) < 2.0
        assert optimal_hop_count(above, 250.0, 0.25) >= 2.0


class TestCharacteristicHopCount:
    def test_integralization_below_one(self):
        # m_opt < 1 -> ceil -> one direct hop.
        assert characteristic_hop_count(CABLETRON, 250.0, 0.5) == 1

    def test_integralization_above_one(self):
        # m_opt >= 1 -> floor.
        m_cont = optimal_hop_count(HYPOTHETICAL_CABLETRON, 250.0, 0.5)
        assert m_cont >= 1
        assert characteristic_hop_count(
            HYPOTHETICAL_CABLETRON, 250.0, 0.5
        ) == math.floor(m_cont)

    def test_never_below_one(self):
        assert characteristic_hop_count(MICA2, 5.0, 0.1) >= 1


class TestRouteEnergy:
    def test_direct_beats_relaying_for_cabletron(self):
        """Eq. 14 evaluated directly: 1 hop beats 2+ for the real card."""
        energies = [
            route_energy(CABLETRON, 250.0, hops, utilization=0.25)
            for hops in (1, 2, 3, 4)
        ]
        assert energies[0] == min(energies)

    def test_relaying_wins_for_hypothetical_card(self):
        e1 = route_energy(HYPOTHETICAL_CABLETRON, 250.0, 1, utilization=0.25)
        e2 = route_energy(HYPOTHETICAL_CABLETRON, 250.0, 2, utilization=0.25)
        assert e2 < e1

    def test_minimum_near_mopt(self):
        """The discrete minimum of Eq. 14 sits at floor/ceil of m_opt."""
        card, distance, u = HYPOTHETICAL_CABLETRON, 250.0, 0.3
        m_opt = optimal_hop_count(card, distance, u)
        energies = {
            hops: route_energy(card, distance, hops, u) for hops in range(1, 8)
        }
        best = min(energies, key=energies.get)
        assert best in (math.floor(m_opt), math.ceil(m_opt))

    def test_energy_scales_with_duration(self):
        e1 = route_energy(CABLETRON, 200.0, 2, 0.2, duration=1.0)
        e10 = route_energy(CABLETRON, 200.0, 2, 0.2, duration=10.0)
        assert e10 == pytest.approx(10 * e1)

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError):
            route_energy(CABLETRON, 100.0, 0, 0.25)


class TestFig7Curves:
    def test_six_curves(self):
        curves = fig7_curves()
        assert len(curves) == 6

    def test_only_hypothetical_crosses_threshold(self):
        curves = fig7_curves()
        crossing = [c.card.name for c in curves if c.crosses_relaying_threshold()]
        assert crossing == ["Hypothetical Cabletron"]

    def test_default_utilization_sweep_matches_figure_axis(self):
        curve = fig7_curves()[0]
        assert curve.utilizations[0] == pytest.approx(0.1)
        assert curve.utilizations[-1] == pytest.approx(0.5)

    def test_custom_utilizations(self):
        curves = fig7_curves(utilizations=(0.2, 0.4))
        assert all(len(c.hop_counts) == 2 for c in curves)

    def test_labels_carry_distance(self):
        labels = [c.label for c in fig7_curves()]
        assert "Cabletron (D=250m)" in labels
