"""Tests for physical-layer capture and the paper-claims validator."""

import pytest

from repro.core.energy_model import NodeEnergy
from repro.core.radio import CABLETRON
from repro.experiments.validation import (
    CLAIMS,
    Claim,
    ClaimResult,
    print_report,
    validate,
)
from repro.net.topology import Placement
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.packet import make_data_packet
from repro.sim.phy import Phy
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


def build_capture_phys(capture_ratio):
    """Receiver at origin; a close sender (30 m) and a far one (240 m)."""
    sim = Simulator()
    positions = {0: (0.0, 0.0), 1: (30.0, 0.0), 2: (240.0, 0.0)}
    channel = Channel(sim, positions, max_range=250.0)
    phys = {
        node_id: Phy(sim, channel, node_id, CABLETRON,
                     NodeEnergy(card=CABLETRON), capture_ratio=capture_ratio)
        for node_id in positions
    }
    return sim, phys


class TestCaptureEffect:
    def test_strong_first_frame_survives_overlap(self):
        sim, phys = build_capture_phys(capture_ratio=10.0)
        received = []
        phys[0].on_receive = lambda p: received.append(p.src)
        phys[1].transmit(make_data_packet(origin=1, final_dst=0, src=1, dst=0))
        phys[2].transmit(make_data_packet(origin=2, final_dst=0, src=2, dst=0))
        sim.run()
        # (240/30)^4 = 4096x power advantage: the close frame survives.
        assert received == [1]

    def test_strong_late_frame_captures(self):
        sim, phys = build_capture_phys(capture_ratio=10.0)
        received = []
        phys[0].on_receive = lambda p: received.append(p.src)
        phys[2].transmit(make_data_packet(origin=2, final_dst=0, src=2, dst=0))
        # The close sender starts a moment later and captures the radio.
        sim.schedule(1e-5, lambda: phys[1].transmit(
            make_data_packet(origin=1, final_dst=0, src=1, dst=0)
        ))
        sim.run()
        assert received == [1]

    def test_comparable_frames_still_collide(self):
        sim = Simulator()
        positions = {0: (100.0, 0.0), 1: (0.0, 0.0), 2: (200.0, 0.0)}
        channel = Channel(sim, positions, max_range=250.0)
        phys = {
            n: Phy(sim, channel, n, CABLETRON, NodeEnergy(card=CABLETRON),
                   capture_ratio=10.0)
            for n in positions
        }
        received = []
        phys[0].on_receive = lambda p: received.append(p.src)
        phys[1].transmit(make_data_packet(origin=1, final_dst=0, src=1, dst=0))
        phys[2].transmit(make_data_packet(origin=2, final_dst=0, src=2, dst=0))
        sim.run()
        assert received == []  # equal distances: no capture

    def test_capture_off_is_destructive(self):
        sim, phys = build_capture_phys(capture_ratio=None)
        received = []
        phys[0].on_receive = lambda p: received.append(p.src)
        phys[1].transmit(make_data_packet(origin=1, final_dst=0, src=1, dst=0))
        phys[2].transmit(make_data_packet(origin=2, final_dst=0, src=2, dst=0))
        sim.run()
        assert received == []

    def test_invalid_ratio_rejected(self):
        sim = Simulator()
        channel = Channel(sim, {0: (0.0, 0.0)}, max_range=250.0)
        with pytest.raises(ValueError):
            Phy(sim, channel, 0, CABLETRON, NodeEnergy(card=CABLETRON),
                capture_ratio=0.5)

    def test_capture_improves_hidden_terminal_delivery(self):
        """End to end: capture resolves asymmetric hidden-terminal losses."""
        placement = Placement(
            {0: (0.0, 0.0), 1: (60.0, 0.0), 2: (300.0, 0.0)}, 300.0, 1.0
        )
        flows = [
            FlowSpec(flow_id=0, source=0, destination=1, rate_bps=32000.0,
                     start=1.0),
            FlowSpec(flow_id=1, source=2, destination=1, rate_bps=32000.0,
                     start=1.0),
        ]
        plain = build_network(placement, "DSR-Active", flows, duration=20.0)
        plain_result = plain.run()
        captured = build_network(placement, "DSR-Active", flows,
                                 duration=20.0, capture_ratio=10.0)
        captured_result = captured.run()
        # The close flow (0 -> 1) benefits from capture.
        assert (
            captured_result.flows[0].delivery_ratio
            >= plain_result.flows[0].delivery_ratio
        )


class TestValidation:
    def test_all_claims_pass(self):
        results = validate()
        failed = [r for r in results if not r.passed]
        assert not failed, [
            (r.claim.claim_id, r.error) for r in failed
        ]

    def test_claims_cover_both_study_kinds(self):
        sections = {claim.section for claim in CLAIMS}
        assert "3" in sections          # problem formalization
        assert "5.1" in sections        # analytical study
        assert any(s.startswith("5.2") for s in sections)  # simulation study

    def test_failing_claim_reported_not_raised(self):
        broken = Claim("broken", "x", "always fails", lambda: 1 / 0)
        results = validate((broken,))
        assert len(results) == 1
        assert not results[0].passed
        assert "ZeroDivisionError" in results[0].error

    def test_print_report_returns_overall(self, capsys):
        good = Claim("good", "x", "passes", lambda: True)
        assert print_report(validate((good,))) is True
        bad = Claim("bad", "x", "fails", lambda: False)
        assert print_report(validate((bad,))) is False
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" in out
