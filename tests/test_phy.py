"""Tests for the radio state machine: energy integration, collisions, sleep."""

import pytest

from repro.core.energy_model import NodeEnergy
from repro.core.radio import CABLETRON, RadioState
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.packet import BROADCAST, PacketKind, make_control_packet, make_data_packet


def build(positions, max_range=250.0):
    sim = Simulator()
    channel = Channel(sim, positions, max_range=max_range)
    from repro.sim.phy import Phy

    phys = {
        node_id: Phy(sim, channel, node_id, CABLETRON, NodeEnergy(card=CABLETRON))
        for node_id in positions
    }
    return sim, channel, phys


class TestEnergyIntegration:
    def test_idle_energy_charged_on_finalize(self):
        sim, channel, phys = build({0: (0, 0)})
        sim.run(until=10.0)
        phys[0].finalize()
        assert phys[0].energy.idle == pytest.approx(10.0 * CABLETRON.p_idle)

    def test_transmit_energy_with_power_control(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        duration = phys[0].transmit(frame, distance=100.0)
        sim.run()
        phys[0].finalize()
        assert phys[0].energy.data_tx == pytest.approx(
            duration * CABLETRON.transmit_power(100.0)
        )

    def test_control_transmit_at_max_power(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        frame = make_control_packet(PacketKind.RTS, src=0, dst=1)
        duration = phys[0].transmit(frame, distance=10.0)  # distance ignored
        sim.run()
        phys[0].finalize()
        assert phys[0].energy.control_tx == pytest.approx(
            duration * CABLETRON.p_tx_max
        )

    def test_receive_energy_charged(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        duration = phys[0].transmit(frame)
        sim.run()
        phys[1].finalize()
        assert phys[1].energy.data_rx == pytest.approx(duration * CABLETRON.p_rx)

    def test_sleep_energy(self):
        sim, channel, phys = build({0: (0, 0)})
        phys[0].sleep()
        sim.run(until=100.0)
        phys[0].finalize()
        assert phys[0].energy.sleep == pytest.approx(100.0 * CABLETRON.p_sleep)
        assert phys[0].energy.idle == 0.0

    def test_state_time_conservation(self):
        """Total accounted time equals simulated time."""
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        phys[0].transmit(frame)
        sim.run(until=5.0)
        for phy in phys.values():
            phy.finalize()
            assert phy.energy.busy_time == pytest.approx(5.0)

    def test_wake_charges_switch_energy(self):
        from dataclasses import replace

        card = replace(CABLETRON, switch_energy=0.001)
        sim = Simulator()
        channel = Channel(sim, {0: (0, 0)}, max_range=250.0)
        from repro.sim.phy import Phy

        phy = Phy(sim, channel, 0, card, NodeEnergy(card=card))
        phy.sleep()
        phy.wake()
        assert phy.energy.switch == pytest.approx(0.001)


class TestSleepSemantics:
    def test_sleeping_radio_misses_frames(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        received = []
        phys[1].on_receive = lambda p: received.append(p)
        phys[1].sleep()
        phys[0].transmit(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        sim.run()
        assert received == []

    def test_sleep_mid_reception_loses_frame(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        received = []
        phys[1].on_receive = lambda p: received.append(p)
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        duration = phys[0].transmit(frame)
        sim.schedule(duration / 2, phys[1].sleep)
        sim.run()
        assert received == []

    def test_cannot_transmit_while_asleep(self):
        sim, channel, phys = build({0: (0, 0)})
        phys[0].sleep()
        with pytest.raises(RuntimeError):
            phys[0].transmit(
                make_data_packet(origin=0, final_dst=1, src=0, dst=1)
            )

    def test_cannot_sleep_while_transmitting(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        phys[0].transmit(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        with pytest.raises(RuntimeError):
            phys[0].sleep()

    def test_wake_is_idempotent(self):
        sim, channel, phys = build({0: (0, 0)})
        phys[0].sleep()
        phys[0].wake()
        phys[0].wake()
        assert phys[0].state is RadioState.IDLE


class TestCollisions:
    def test_overlapping_frames_collide(self):
        """Hidden terminal: 0 and 2 both reach 1 but not each other."""
        sim, channel, phys = build(
            {0: (0, 0), 1: (200, 0), 2: (400, 0)}, max_range=250.0
        )
        received = []
        phys[1].on_receive = lambda p: received.append(p)
        phys[0].transmit(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        phys[2].transmit(make_data_packet(origin=2, final_dst=1, src=2, dst=1))
        sim.run()
        assert received == []
        assert phys[1].frames_collided >= 1

    def test_sequential_frames_do_not_collide(self):
        sim, channel, phys = build({0: (0, 0), 1: (200, 0), 2: (400, 0)})
        received = []
        phys[1].on_receive = lambda p: received.append(p.src)
        first = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        duration = first.size_bits / CABLETRON.bandwidth
        phys[0].transmit(first)
        sim.schedule(
            duration * 2,
            lambda: phys[2].transmit(
                make_data_packet(origin=2, final_dst=1, src=2, dst=1)
            ),
        )
        sim.run()
        assert received == [0, 2]

    def test_transmitting_radio_misses_incoming(self):
        """Half duplex: a sender cannot hear a concurrent frame."""
        sim, channel, phys = build({0: (0, 0), 1: (100, 0)})
        received = []
        phys[0].on_receive = lambda p: received.append(p)
        phys[0].transmit(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        phys[1].transmit(make_data_packet(origin=1, final_dst=0, src=1, dst=0))
        sim.run()
        assert received == []

    def test_carrier_busy_during_overheard_frame(self):
        sim, channel, phys = build({0: (0, 0), 1: (100, 0), 2: (150, 0)})
        frame = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        phys[0].transmit(frame)
        # Immediately after transmission starts, node 2 overhears it.
        assert phys[2].carrier_busy
        sim.run()
        assert not phys[2].carrier_busy

    def test_collision_counts_as_receive_energy_not_delivery(self):
        sim, channel, phys = build(
            {0: (0, 0), 1: (200, 0), 2: (400, 0)}, max_range=250.0
        )
        phys[0].transmit(make_data_packet(origin=0, final_dst=1, src=0, dst=1))
        phys[2].transmit(make_data_packet(origin=2, final_dst=1, src=2, dst=1))
        sim.run()
        phys[1].finalize()
        assert phys[1].frames_received == 0
        assert phys[1].energy.data_rx > 0  # the radio was occupied regardless
