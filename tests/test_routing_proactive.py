"""Tests for the proactive routing family (DSDV, DSDVH)."""

import math

import pytest

from repro.core.radio import CABLETRON, PowerMode
from repro.net.topology import Placement
from repro.routing.proactive import INFINITE_METRIC, DsdvUpdate, UpdateEntry
from repro.sim.packet import make_data_packet
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network, line_flow


@pytest.fixture
def line_placement():
    positions = {i: (150.0 * i, 0.0) for i in range(5)}
    return Placement(positions, width=600.0, height=1.0)


@pytest.fixture
def triangle_placement():
    positions = {0: (0.0, 0.0), 1: (200.0, 0.0), 2: (100.0, 100.0)}
    return Placement(positions, width=200.0, height=100.0)


class TestDsdvConvergence:
    def test_tables_converge_on_line(self, line_placement):
        net = build_network(line_placement, "DSDV-ODPM", [line_flow(start=25.0)],
                            duration=40.0)
        net.run()
        # After two update rounds, node 0 must know a route to node 4.
        route = net.nodes[0].routing.route_to(4)
        assert route is not None
        next_hop, metric = route
        assert next_hop == 1
        assert metric == pytest.approx(4.0)  # hop count on the chain

    def test_data_delivery_after_convergence(self, line_placement):
        net = build_network(line_placement, "DSDV-ODPM", [line_flow(start=25.0)],
                            duration=45.0)
        result = net.run()
        assert result.delivery_ratio > 0.85

    def test_full_walk_of_tables_matches_topology(self, line_placement):
        net = build_network(line_placement, "DSDV-ODPM", [line_flow(start=25.0)],
                            duration=40.0)
        net.run()
        routes = net.extract_routes()
        assert routes[0] == (0, 1, 2, 3, 4)

    def test_periodic_updates_counted(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=2000.0,
                          start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows, duration=40.0)
        net.run()
        for node in net.nodes.values():
            assert node.routing.periodic_updates >= 2


class TestSequenceNumbers:
    def test_newer_seqno_wins_even_with_worse_metric(self, triangle_placement):
        net = build_network(
            triangle_placement, "DSDV-ODPM",
            [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                      start=20.0)],
            duration=1.0,
        )
        routing = net.nodes[0].routing
        routing._on_update(DsdvUpdate(
            sender=2, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=1.0, seqno=2),),
            full_dump=True,
        ))
        assert routing.route_to(1) == (2, 2.0)
        # Older seqno with a better metric must NOT displace it.
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=0.0, seqno=0),),
            full_dump=True,
        ))
        assert routing.route_to(1) == (2, 2.0)

    def test_same_seqno_lower_metric_wins(self, triangle_placement):
        net = build_network(
            triangle_placement, "DSDV-ODPM",
            [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                      start=20.0)],
            duration=1.0,
        )
        routing = net.nodes[0].routing
        routing._on_update(DsdvUpdate(
            sender=2, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=5.0, seqno=2),),
            full_dump=True,
        ))
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=0.0, seqno=2),),
            full_dump=True,
        ))
        next_hop, metric = routing.route_to(1)
        assert next_hop == 1
        assert metric == pytest.approx(1.0)


class TestLinkFailurePoisoning:
    def test_failure_poisons_routes_with_odd_seqno(self, triangle_placement):
        net = build_network(
            triangle_placement, "DSDV-ODPM",
            [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                      start=20.0)],
            duration=1.0,
        )
        routing = net.nodes[0].routing
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=1, metric=0.0, seqno=2),),
            full_dump=True,
        ))
        assert routing.route_to(1) is not None
        packet = make_data_packet(origin=0, final_dst=1, src=0, dst=1)
        routing.on_link_failure(1, packet)
        assert routing.route_to(1) is None
        entry = routing.table[1]
        assert math.isinf(entry.metric)
        assert entry.seqno % 2 == 1  # odd: broken-route marker


class TestDsdvh:
    def test_mode_change_triggers_update(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                          start=20.0)]
        net = build_network(triangle_placement, "DSDVH-ODPM", flows, duration=1.0)
        routing = net.nodes[2].routing
        before = routing.triggered_updates
        routing.on_power_mode_change()
        net.sim.run(until=net.sim.now + 2.0)
        # At least our trigger fired; cost-change propagation may add more.
        assert routing.triggered_updates >= before + 1

    def test_plain_dsdv_ignores_mode_changes(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                          start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows, duration=1.0)
        routing = net.nodes[2].routing
        routing.on_power_mode_change()
        net.sim.run(until=net.sim.now + 2.0)
        assert routing.triggered_updates == 0

    def test_triggered_updates_rate_limited(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                          start=20.0)]
        net = build_network(triangle_placement, "DSDVH-ODPM", flows, duration=1.0)
        routing = net.nodes[2].routing
        for _ in range(10):
            routing.on_power_mode_change()
        net.sim.run(until=net.sim.now + 0.5)
        assert routing.triggered_updates <= 1

    def test_joint_metric_reflects_psm_state(self, triangle_placement):
        """An update from a PSM sender yields a costlier route than the same
        update from an active sender (Eq. 12 penalty)."""
        flows = [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                          start=20.0)]
        net = build_network(triangle_placement, "DSDVH-ODPM", flows, duration=1.0)
        routing = net.nodes[0].routing
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=9, metric=0.0, seqno=2),),
            full_dump=True,
        ))
        active_metric = routing.table[9].metric
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.POWER_SAVE,
            entries=(UpdateEntry(destination=9, metric=0.0, seqno=4),),
            full_dump=True,
        ))
        psm_metric = routing.table[9].metric
        assert psm_metric - active_metric == pytest.approx(CABLETRON.p_idle)

    def test_dsdvh_generates_more_control_traffic_than_dsr(self, line_placement):
        """The §5.2.1 overhead story at miniature scale."""
        flows = [line_flow(start=20.0)]
        dsdvh = build_network(line_placement, "DSDVH-ODPM", flows, duration=40.0)
        dsdvh_result = dsdvh.run()
        dsr = build_network(line_placement, "DSR-ODPM", flows, duration=40.0)
        dsr_result = dsr.run()
        assert dsdvh_result.control_packets > dsr_result.control_packets

    def test_stale_routes_not_advertised(self, triangle_placement):
        flows = [FlowSpec(flow_id=0, source=0, destination=1, rate_bps=1000.0,
                          start=20.0)]
        net = build_network(triangle_placement, "DSDV-ODPM", flows, duration=1.0)
        routing = net.nodes[0].routing
        routing._on_update(DsdvUpdate(
            sender=1, sender_mode=PowerMode.ACTIVE,
            entries=(UpdateEntry(destination=9, metric=1.0, seqno=2),),
            full_dump=True,
        ))
        # Fast-forward beyond the route lifetime without refreshes.
        lifetime = 3 * routing.update_interval
        net.sim.run(until=net.sim.now + lifetime + 1.0)
        captured = []
        net.nodes[0].mac.send = lambda frame, distance=None: captured.append(frame)
        routing._broadcast_update(full_dump=True)
        assert len(captured) == 1
        advertised = {entry.destination for entry in captured[0].payload.entries}
        assert 9 not in advertised  # stale route suppressed
        assert 0 in advertised  # own entry always advertised
