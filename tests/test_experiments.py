"""Tests for experiment scenarios and runners."""

import pytest

from repro.core.radio import CABLETRON, HYPOTHETICAL_CABLETRON
from repro.experiments.runner import (
    frozen_route_goodput,
    run_many,
    run_single,
    stabilize_routes,
    sweep,
)
from repro.experiments.scenarios import (
    FIELD_PROTOCOLS,
    GRID_PROTOCOLS,
    HIGH_RATES_KBPS,
    density_network,
    grid_network,
    large_network,
    small_network,
)


class TestScenarioPresets:
    def test_small_network_matches_paper_parameters(self):
        scenario = small_network(scale="paper")
        assert scenario.node_count == 50
        assert scenario.field_size == 500.0
        assert scenario.flow_count == 10
        assert scenario.rates_kbps == (2.0, 3.0, 4.0, 5.0, 6.0)
        assert scenario.duration == 900.0
        assert scenario.runs == 5
        assert scenario.card is CABLETRON
        assert scenario.start_window == (20.0, 25.0)

    def test_large_network_matches_paper_parameters(self):
        scenario = large_network(scale="paper")
        assert scenario.node_count == 200
        assert scenario.field_size == 1300.0
        assert scenario.flow_count == 20
        assert scenario.duration == 600.0
        assert scenario.runs == 10

    def test_density_networks(self):
        for count in (300, 400):
            scenario = density_network(count, scale="paper")
            assert scenario.node_count == count
            assert scenario.rates_kbps == (4.0,)
            assert scenario.protocols == ("DSR-ODPM-PC", "TITAN-PC")
        with pytest.raises(ValueError):
            density_network(500)

    def test_grid_network_matches_paper_parameters(self):
        scenario = grid_network(scale="paper")
        assert scenario.node_count == 49
        assert scenario.field_size == 300.0
        assert scenario.flow_count == 7
        assert scenario.card is HYPOTHETICAL_CABLETRON
        assert scenario.grid

    def test_bench_scale_preserves_structure(self):
        paper = small_network(scale="paper")
        bench = small_network(scale="bench")
        assert bench.node_count == paper.node_count
        assert bench.field_size == paper.field_size
        assert bench.rates_kbps == paper.rates_kbps
        assert bench.duration < paper.duration

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            small_network(scale="gigantic")

    def test_protocol_lists_cover_figures(self):
        assert "TITAN-PC" in FIELD_PROTOCOLS
        assert "DSDVH-ODPM" in FIELD_PROTOCOLS
        assert "MTPR-ODPM" in GRID_PROTOCOLS
        assert HIGH_RATES_KBPS[-1] == 200.0

    def test_grid_placement_is_seed_independent(self):
        scenario = grid_network(scale="smoke")
        assert scenario.placement(1).positions == scenario.placement(2).positions

    def test_random_placement_is_seed_dependent(self):
        scenario = small_network(scale="smoke")
        assert scenario.placement(1).positions != scenario.placement(2).positions

    def test_grid_flows_left_to_right(self):
        scenario = grid_network(scale="smoke")
        flows = scenario.flows(seed=1, rate_kbps=2.0)
        assert len(flows) == 7
        assert flows[0].source == 0 and flows[0].destination == 6


class TestRunners:
    def test_run_single(self):
        scenario = grid_network(scale="smoke")
        result = run_single(scenario, "TITAN-PC", 2.0, seed=1)
        assert 0.0 <= result.delivery_ratio <= 1.0
        assert result.e_network > 0.0

    def test_run_many_aggregates(self):
        scenario = grid_network(scale="smoke").scaled(duration=30.0, runs=2)
        agg = run_many(scenario, "DSR-ODPM", 2.0)
        assert agg.runs == 2
        assert agg.delivery_ratio.n == 2

    def test_sweep_covers_grid(self):
        scenario = grid_network(scale="smoke")
        grid = sweep(scenario, protocols=("DSR-ODPM",), rates_kbps=(2.0,))
        assert set(grid) == {("DSR-ODPM", 2.0)}


class TestFrozenRoutes:
    def test_stabilize_extracts_all_flows(self):
        scenario = grid_network(scale="smoke").scaled(duration=40.0, runs=1)
        _, routes = stabilize_routes(scenario, "DSR-ODPM", seed=1)
        assert len(routes) == 7
        for flow_id, path in routes.items():
            assert path[0] == flow_id * 7
            assert path[-1] == flow_id * 7 + 6

    def test_goodput_points_for_each_rate(self):
        scenario = grid_network(scale="smoke").scaled(duration=40.0, runs=1)
        points = frozen_route_goodput(
            scenario, "TITAN-PC", (2.0, 50.0), "perfect", duration=50.0
        )
        assert [p.rate_kbps for p in points] == [2.0, 50.0]
        assert all(p.energy_goodput > 0 for p in points)

    def test_goodput_grows_with_rate_under_perfect_scheduling(self):
        """Fixed per-packet cost, zero idle: goodput rises with rate
        (sub-linearly), the Fig. 13 -> 15 trend."""
        scenario = grid_network(scale="smoke").scaled(duration=40.0, runs=1)
        points = frozen_route_goodput(
            scenario, "DSR-ODPM", (2.0, 200.0), "perfect", duration=50.0
        )
        assert points[1].energy_goodput > points[0].energy_goodput

    def test_odpm_scheduling_cheaper_for_titan_than_mtpr_at_low_rate(self):
        """The Fig. 14 ordering: with idling charged, the few-relay protocol
        wins at CBR rates."""
        scenario = grid_network(scale="smoke").scaled(duration=40.0, runs=1)
        titan = frozen_route_goodput(
            scenario, "TITAN-PC", (4.0,), "odpm", duration=50.0
        )[0]
        mtpr = frozen_route_goodput(
            scenario, "MTPR-ODPM", (4.0,), "odpm", duration=50.0
        )[0]
        assert titan.energy_goodput > mtpr.energy_goodput

    def test_dsr_active_never_sleeps(self):
        scenario = grid_network(scale="smoke").scaled(duration=40.0, runs=1)
        point = frozen_route_goodput(
            scenario, "DSR-Active", (4.0,), "perfect", duration=50.0
        )[0]
        titan = frozen_route_goodput(
            scenario, "TITAN-PC", (4.0,), "perfect", duration=50.0
        )[0]
        # Always-on idling dwarfs everything: DSR-Active is far worse even
        # under the "perfect" label (it ignores scheduling by definition).
        assert point.energy_goodput < 0.25 * titan.energy_goodput
