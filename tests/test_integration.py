"""Cross-layer integration tests: full stacks on small networks.

These exercise the invariants the paper's evaluation relies on: energy
conservation (every second of every node's time is charged to exactly one
radio state), end-to-end delivery across every protocol preset, and the
qualitative protocol orderings of §5.2 at miniature scale.
"""

import pytest

from repro.core.radio import CABLETRON, PowerMode
from repro.net.topology import Placement
from repro.sim.network import PROTOCOLS, NetworkConfig, WirelessNetwork
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network, line_flow


@pytest.fixture
def mesh_placement():
    """A 3x3 mesh, 120 m spacing: multi-hop with route diversity."""
    positions = {
        row * 3 + col: (120.0 * col, 120.0 * row)
        for row in range(3)
        for col in range(3)
    }
    return Placement(positions, width=240.0, height=240.0)


def mesh_flows():
    return [
        FlowSpec(flow_id=0, source=0, destination=8, rate_bps=4000.0, start=2.0),
        FlowSpec(flow_id=1, source=6, destination=2, rate_bps=4000.0, start=3.0),
    ]


class TestEveryProtocolDelivers:
    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_delivery_on_mesh(self, mesh_placement, protocol):
        duration = 60.0 if protocol.startswith("DSDV") else 30.0
        net = build_network(mesh_placement, protocol, mesh_flows(),
                            duration=duration)
        result = net.run()
        assert result.delivery_ratio > 0.75, protocol
        assert result.e_network > 0.0


class TestEnergyConservation:
    @pytest.mark.parametrize(
        "protocol", ["DSR-Active", "DSR-ODPM", "TITAN-PC", "DSDVH-ODPM"]
    )
    def test_state_time_sums_to_duration(self, mesh_placement, protocol):
        """Every node's radio-state occupancy must sum to the horizon."""
        duration = 20.0
        net = build_network(mesh_placement, protocol, mesh_flows(),
                            duration=duration)
        net.run()
        for node_id, node in net.nodes.items():
            assert node.phy.energy.busy_time == pytest.approx(
                duration, rel=1e-6
            ), (protocol, node_id)

    def test_network_energy_is_sum_of_nodes(self, mesh_placement):
        net = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                            duration=20.0)
        result = net.run()
        total = sum(n.phy.energy.total for n in net.nodes.values())
        assert result.e_network == pytest.approx(total)

    def test_sleep_occurs_only_under_power_saving(self, mesh_placement):
        active = build_network(mesh_placement, "DSR-Active", mesh_flows(),
                               duration=20.0)
        active_result = active.run()
        saving = build_network(mesh_placement, "DSR-ODPM", mesh_flows(),
                               duration=20.0)
        saving_result = saving.run()
        assert active_result.energy_summary["sleep_energy"] == 0.0
        assert saving_result.energy_summary["sleep_energy"] > 0.0


class TestPaperOrderings:
    """§5.2 qualitative results at miniature scale."""

    def test_power_saving_beats_always_on(self, mesh_placement):
        odpm = build_network(mesh_placement, "DSR-ODPM", mesh_flows(),
                             duration=40.0).run()
        always = build_network(mesh_placement, "DSR-Active", mesh_flows(),
                               duration=40.0).run()
        assert odpm.energy_goodput > 1.5 * always.energy_goodput

    def test_power_control_reduces_transmit_energy(self, mesh_placement):
        pc = build_network(mesh_placement, "DSR-ODPM-PC", mesh_flows(),
                           duration=40.0).run()
        nopc = build_network(mesh_placement, "DSR-ODPM", mesh_flows(),
                             duration=40.0).run()
        assert pc.transmit_energy < nopc.transmit_energy
        # ...but barely moves total energy (idling dominates, Fig. 9/10).
        assert pc.e_network == pytest.approx(nopc.e_network, rel=0.35)

    def test_dsdvh_control_overhead_exceeds_reactive(self, mesh_placement):
        dsdvh = build_network(mesh_placement, "DSDVH-ODPM", mesh_flows(),
                              duration=40.0).run()
        titan = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                              duration=40.0).run()
        assert dsdvh.control_packets > 2 * titan.control_packets

    def test_titan_goodput_at_least_dsr_odpm(self, mesh_placement):
        titan = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                              duration=40.0).run()
        dsdvh = build_network(mesh_placement, "DSDVH-ODPM", mesh_flows(),
                              duration=40.0).run()
        assert titan.energy_goodput > dsdvh.energy_goodput


class TestOdpmDynamics:
    def test_relays_return_to_psm_after_flow_stops(self, mesh_placement):
        flows = [
            FlowSpec(flow_id=0, source=0, destination=8, rate_bps=4000.0,
                     start=2.0, stop=6.0),
        ]
        net = build_network(mesh_placement, "DSR-ODPM", flows, duration=30.0)
        net.run()
        # Keep-alives (10 s RREP / 5 s data) have expired by t=30.
        for node in net.nodes.values():
            assert node.power.mode is PowerMode.POWER_SAVE

    def test_active_relays_while_flow_runs(self, mesh_placement):
        flows = [
            FlowSpec(flow_id=0, source=0, destination=8, rate_bps=4000.0,
                     start=2.0),
        ]
        net = build_network(mesh_placement, "DSR-ODPM", flows, duration=15.0)
        net.run()
        routes = net.extract_routes()
        assert 0 in routes
        for node_id in routes[0]:
            assert net.nodes[node_id].power.mode is PowerMode.ACTIVE


class TestDeterminism:
    def test_same_seed_same_result(self, mesh_placement):
        a = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                          duration=20.0, seed=5).run()
        b = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                          duration=20.0, seed=5).run()
        assert a.delivery_ratio == b.delivery_ratio
        assert a.e_network == pytest.approx(b.e_network)
        assert a.events_processed == b.events_processed

    def test_different_seed_different_microstate(self, mesh_placement):
        a = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                          duration=20.0, seed=5).run()
        b = build_network(mesh_placement, "TITAN-PC", mesh_flows(),
                          duration=20.0, seed=6).run()
        # Backoffs and jitters differ; event counts almost surely diverge.
        assert a.events_processed != b.events_processed


class TestNetworkConfigValidation:
    def test_unknown_protocol(self, mesh_placement):
        with pytest.raises(ValueError, match="unknown protocol"):
            NetworkConfig(
                placement=mesh_placement, card=CABLETRON, protocol="OSPF",
                flows=mesh_flows(), duration=10.0,
            )

    def test_unknown_flow_endpoint(self, mesh_placement):
        bad = [FlowSpec(flow_id=0, source=0, destination=99, rate_bps=1.0)]
        with pytest.raises(ValueError, match="unknown nodes"):
            NetworkConfig(
                placement=mesh_placement, card=CABLETRON,
                protocol="DSR-Active", flows=bad, duration=10.0,
            )

    def test_nonpositive_duration(self, mesh_placement):
        with pytest.raises(ValueError):
            NetworkConfig(
                placement=mesh_placement, card=CABLETRON,
                protocol="DSR-Active", flows=mesh_flows(), duration=0.0,
            )
