"""Second property-based batch: buffers, plots, evaluator, Eq. 14/15 link."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytical import optimal_hop_count, route_energy
from repro.core.energy_model import FlowRoute, RouteEnergyEvaluator
from repro.core.radio import CABLETRON, RadioModel
from repro.metrics.plotting import AsciiPlot
from repro.routing.base import SendBuffer
from repro.sim.packet import make_data_packet

cards = st.builds(
    RadioModel,
    name=st.just("gen"),
    p_idle=st.floats(0.01, 2.0),
    p_rx=st.floats(0.01, 2.0),
    p_base=st.floats(0.01, 3.0),
    alpha2=st.floats(1e-12, 1e-7),
    path_loss_exponent=st.sampled_from([2.0, 4.0]),
    max_range=st.floats(50.0, 500.0),
)


class TestEq14Eq15Consistency:
    @given(
        card=cards,
        distance=st.floats(50.0, 400.0),
        utilization=st.floats(0.05, 0.5),
    )
    @settings(max_examples=150)
    def test_mopt_is_where_route_energy_is_minimized(
        self, card, distance, utilization
    ):
        """Eq. 15 must sit at the discrete minimum of Eq. 14 (within 1)."""
        m_opt = optimal_hop_count(card, distance, utilization)
        energies = {
            hops: route_energy(card, distance, hops, utilization)
            for hops in range(1, 12)
        }
        best = min(energies, key=energies.get)
        continuous_best = min(max(m_opt, 1.0), 11.0)
        assert abs(best - continuous_best) <= 1.0


class TestSendBufferProperties:
    @given(
        pushes=st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 99)),
            max_size=60,
        ),
        capacity=st.integers(1, 8),
    )
    @settings(max_examples=100)
    def test_capacity_respected_and_fifo_tail_kept(self, pushes, capacity):
        buffer = SendBuffer(capacity_per_destination=capacity)
        expected: dict[int, list[int]] = {}
        for destination, seqno in pushes:
            packet = make_data_packet(
                origin=0, final_dst=destination, src=0, dst=0, seqno=seqno
            )
            buffer.push(destination, packet)
            tail = expected.setdefault(destination, [])
            tail.append(seqno)
            del tail[:-capacity]
        total_pushed = len(pushes)
        total_kept = sum(len(v) for v in expected.values())
        assert buffer.dropped_overflow == total_pushed - total_kept
        for destination, seqnos in expected.items():
            assert [
                p.seqno for p in buffer.pop_all(destination)
            ] == seqnos


class TestAsciiPlotProperties:
    @given(
        series=st.lists(
            st.lists(
                st.tuples(
                    st.floats(-1e4, 1e4),
                    st.floats(-1e4, 1e4),
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100)
    def test_render_never_crashes_and_fits_width(self, series):
        plot = AsciiPlot(width=50, height=12)
        for index, points in enumerate(series):
            plot.add_series(
                "s%d" % index,
                [x for x, _ in points],
                [y for _, y in points],
            )
        output = plot.render()
        for line in output.splitlines():
            assert len(line) <= 50 + 30  # frame + labels margin


class TestEvaluatorProperties:
    @given(
        rate=st.floats(100.0, 50_000.0),
        duration=st.floats(1.0, 300.0),
        hops=st.integers(1, 4),
    )
    @settings(max_examples=100, deadline=None)
    def test_energy_positive_and_conserved(self, rate, duration, hops):
        positions = {i: (100.0 * i, 0.0) for i in range(hops + 1)}
        evaluator = RouteEnergyEvaluator(positions, CABLETRON)
        route = FlowRoute(path=tuple(range(hops + 1)), rate=rate)
        energy = evaluator.evaluate([route], duration, scheduling="odpm")
        assert energy.e_network > 0
        for node_id, ledger in energy.nodes.items():
            # Accounted time never exceeds the horizon (clamped at zero
            # passive when the route saturates the node).
            assert ledger.busy_time <= duration * (1 + 1e-9)

    @given(rate=st.floats(100.0, 20_000.0))
    @settings(max_examples=50, deadline=None)
    def test_perfect_never_costs_more_than_odpm(self, rate):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (0.0, 100.0)}
        evaluator = RouteEnergyEvaluator(positions, CABLETRON)
        route = FlowRoute(path=(0, 1), rate=rate)
        perfect = evaluator.evaluate([route], 30.0, scheduling="perfect")
        odpm = evaluator.evaluate([route], 30.0, scheduling="odpm")
        assert perfect.e_network <= odpm.e_network + 1e-9
