"""Tests for the energy model (Eqs. 1–5) and the frozen-route evaluator."""

import pytest

from repro.core.energy_model import (
    FlowRoute,
    NetworkEnergy,
    NodeEnergy,
    RouteEnergyEvaluator,
)
from repro.core.radio import CABLETRON, MICA2, RadioState


class TestNodeEnergy:
    def test_data_tx_at_controlled_power(self):
        ledger = NodeEnergy(card=CABLETRON)
        energy = ledger.charge_data_tx(2.0, distance=100.0)
        assert energy == pytest.approx(2.0 * CABLETRON.transmit_power(100.0))
        assert ledger.data_tx == pytest.approx(energy)

    def test_data_tx_without_distance_uses_max_power(self):
        ledger = NodeEnergy(card=CABLETRON)
        ledger.charge_data_tx(1.0)
        assert ledger.data_tx == pytest.approx(CABLETRON.p_tx_max)

    def test_control_tx_always_max_power(self):
        """Eq. 2: control packets at maximum power level."""
        ledger = NodeEnergy(card=CABLETRON)
        ledger.charge_control_tx(1.0)
        assert ledger.control_tx == pytest.approx(CABLETRON.p_tx_max)

    def test_eq1_data_energy_composition(self):
        ledger = NodeEnergy(card=CABLETRON)
        ledger.charge_data_tx(1.0, distance=50.0)
        ledger.charge_data_rx(3.0)
        expected = CABLETRON.transmit_power(50.0) + 3.0 * CABLETRON.p_rx
        assert ledger.e_data == pytest.approx(expected)

    def test_eq3_passive_energy_composition(self):
        ledger = NodeEnergy(card=MICA2)
        ledger.charge_idle(10.0)
        ledger.charge_sleep(90.0)
        ledger.charge_switch(4)
        expected = (
            10.0 * MICA2.p_idle + 90.0 * MICA2.p_sleep + 4 * MICA2.switch_energy
        )
        assert ledger.e_passive == pytest.approx(expected)

    def test_total_is_comm_plus_passive(self):
        ledger = NodeEnergy(card=CABLETRON)
        ledger.charge_data_tx(1.0, distance=10.0)
        ledger.charge_control_rx(2.0)
        ledger.charge_idle(5.0)
        assert ledger.total == pytest.approx(ledger.e_comm + ledger.e_passive)

    def test_state_time_tracks_occupancy(self):
        ledger = NodeEnergy(card=CABLETRON)
        ledger.charge_data_tx(1.5, distance=10.0)
        ledger.charge_control_rx(0.5)
        ledger.charge_idle(3.0)
        ledger.charge_sleep(5.0)
        assert ledger.state_time[RadioState.TRANSMIT] == pytest.approx(1.5)
        assert ledger.state_time[RadioState.RECEIVE] == pytest.approx(0.5)
        assert ledger.busy_time == pytest.approx(10.0)

    def test_transmit_energy_combines_data_and_control(self):
        ledger = NodeEnergy(card=CABLETRON)
        ledger.charge_data_tx(1.0, distance=10.0)
        ledger.charge_control_tx(1.0)
        assert ledger.transmit_energy == pytest.approx(
            ledger.data_tx + ledger.control_tx
        )

    def test_negative_duration_rejected(self):
        ledger = NodeEnergy(card=CABLETRON)
        for method in (
            ledger.charge_idle,
            ledger.charge_sleep,
            ledger.charge_data_rx,
            ledger.charge_control_rx,
            ledger.charge_control_tx,
        ):
            with pytest.raises(ValueError):
                method(-1.0)

    def test_negative_transitions_rejected(self):
        with pytest.raises(ValueError):
            NodeEnergy(card=CABLETRON).charge_switch(-1)


class TestNetworkEnergy:
    def test_eq4_sums_over_nodes(self):
        network = NetworkEnergy()
        a = network.add_node(1, CABLETRON)
        b = network.add_node(2, CABLETRON)
        a.charge_idle(10.0)
        b.charge_data_tx(1.0, distance=100.0)
        assert network.e_network == pytest.approx(a.total + b.total)

    def test_duplicate_node_rejected(self):
        network = NetworkEnergy()
        network.add_node(1, CABLETRON)
        with pytest.raises(ValueError):
            network.add_node(1, CABLETRON)

    def test_energy_goodput(self):
        network = NetworkEnergy()
        network.add_node(1, CABLETRON).charge_idle(10.0)
        goodput = network.energy_goodput(1000.0)
        assert goodput == pytest.approx(1000.0 / (10.0 * CABLETRON.p_idle))

    def test_energy_goodput_zero_energy(self):
        assert NetworkEnergy().energy_goodput(100.0) == 0.0

    def test_energy_goodput_rejects_negative_bits(self):
        network = NetworkEnergy()
        with pytest.raises(ValueError):
            network.energy_goodput(-1.0)

    def test_summary_components_add_up(self):
        network = NetworkEnergy()
        ledger = network.add_node(1, CABLETRON)
        ledger.charge_data_tx(1.0, distance=10.0)
        ledger.charge_control_rx(2.0)
        ledger.charge_idle(3.0)
        ledger.charge_sleep(4.0)
        summary = network.summary()
        assert summary["e_network"] == pytest.approx(
            summary["e_comm"] + summary["e_passive"]
        )
        assert summary["e_comm"] == pytest.approx(
            summary["e_data"] + summary["e_control"]
        )


class TestFlowRoute:
    def test_hop_count_and_relays(self):
        route = FlowRoute(path=(1, 2, 3, 4), rate=1000.0)
        assert route.hop_count == 3
        assert route.relays == (2, 3)

    def test_rejects_loops(self):
        with pytest.raises(ValueError):
            FlowRoute(path=(1, 2, 1), rate=10.0)

    def test_rejects_trivial_path(self):
        with pytest.raises(ValueError):
            FlowRoute(path=(1,), rate=10.0)


class TestRouteEnergyEvaluator:
    @pytest.fixture
    def evaluator(self):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (200.0, 0.0), 3: (0.0, 100.0)}
        return RouteEnergyEvaluator(positions, CABLETRON, power_control=True)

    def test_perfect_scheduling_sleeps_everyone_when_idle(self, evaluator):
        route = FlowRoute(path=(0, 1, 2), rate=2000.0)
        energy = evaluator.evaluate([route], duration=10.0, scheduling="perfect")
        # Node 3 is off-route: with perfect scheduling it sleeps throughout.
        assert energy[3].sleep > 0
        assert energy[3].idle == 0
        assert energy[3].e_comm == 0

    def test_odpm_scheduling_keeps_relays_idling(self, evaluator):
        route = FlowRoute(path=(0, 1, 2), rate=2000.0)
        energy = evaluator.evaluate([route], duration=10.0, scheduling="odpm")
        # The relay idles between packets; the off-route node duty-cycles.
        assert energy[1].idle > 0
        assert energy[3].sleep > 0
        assert energy[3].idle > 0  # ATIM fraction of each beacon interval

    def test_perfect_cheaper_than_odpm(self, evaluator):
        route = FlowRoute(path=(0, 1, 2), rate=2000.0)
        perfect = evaluator.evaluate([route], 10.0, scheduling="perfect")
        odpm = evaluator.evaluate([route], 10.0, scheduling="odpm")
        assert perfect.e_network < odpm.e_network

    def test_airtime_accounting(self, evaluator):
        rate = 2048.0  # bits/s
        duration = 10.0
        route = FlowRoute(path=(0, 1), rate=rate)
        energy = evaluator.evaluate(
            [route], duration, packet_size_bits=1024, scheduling="perfect"
        )
        packets = rate * duration / 1024
        airtime = packets * 1024 / CABLETRON.bandwidth
        assert energy[0].state_time[RadioState.TRANSMIT] == pytest.approx(airtime)
        assert energy[1].state_time[RadioState.RECEIVE] == pytest.approx(airtime)

    def test_power_control_reduces_tx_energy(self):
        positions = {0: (0.0, 0.0), 1: (200.0, 0.0)}
        route = FlowRoute(path=(0, 1), rate=2000.0)
        pc = RouteEnergyEvaluator(positions, CABLETRON, power_control=True)
        nopc = RouteEnergyEvaluator(positions, CABLETRON, power_control=False)
        e_pc = pc.evaluate([route], 10.0, scheduling="perfect")
        e_nopc = nopc.evaluate([route], 10.0, scheduling="perfect")
        assert e_pc[0].data_tx < e_nopc[0].data_tx

    def test_goodput_decreases_with_extra_relay_at_low_rate(self):
        """The §5.1 story: with idling counted, extra relays cost energy."""
        positions = {0: (0.0, 0.0), 1: (125.0, 0.0), 2: (250.0, 0.0)}
        direct = [FlowRoute(path=(0, 2), rate=2000.0)]
        relayed = [FlowRoute(path=(0, 1, 2), rate=2000.0)]
        evaluator = RouteEnergyEvaluator(positions, CABLETRON, power_control=True)
        goodput_direct = evaluator.energy_goodput(direct, 10.0, scheduling="odpm")
        goodput_relayed = evaluator.energy_goodput(relayed, 10.0, scheduling="odpm")
        assert goodput_direct > goodput_relayed

    def test_invalid_scheduling_rejected(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate([FlowRoute((0, 1), 100.0)], 1.0, scheduling="magic")

    def test_atim_fraction_validated(self):
        with pytest.raises(ValueError):
            RouteEnergyEvaluator({0: (0, 0)}, CABLETRON, atim_fraction=1.5)
