"""Tests for the Span advertised-traffic window and runner internals."""

import pytest

from repro.core.energy_model import FlowRoute, RouteEnergyEvaluator
from repro.core.radio import CABLETRON, RadioState
from repro.experiments.runner import _always_active_energy
from repro.net.topology import Placement
from repro.traffic.flows import FlowSpec

from tests.conftest import build_network


@pytest.fixture
def mesh_placement():
    positions = {
        row * 3 + col: (120.0 * col, 120.0 * row)
        for row in range(3)
        for col in range(3)
    }
    return Placement(positions, width=240.0, height=240.0)


def mesh_flows():
    return [
        FlowSpec(flow_id=0, source=0, destination=8, rate_bps=4000.0,
                 start=2.0),
        FlowSpec(flow_id=1, source=6, destination=2, rate_bps=4000.0,
                 start=3.0),
    ]


class TestAdvertisedWindow:
    """The §5.2.1 Span-style PSM improvement and its side effect."""

    def run_pair(self, mesh_placement, duration=45.0):
        span = build_network(
            mesh_placement, "DSDVH-ODPM(0.6,1.2)-Span", mesh_flows(),
            duration=duration,
        )
        span_result = span.run()
        standard = build_network(
            mesh_placement, "DSDVH-ODPM", mesh_flows(), duration=duration
        )
        standard_result = standard.run()
        return span_result, standard_result

    def test_span_improves_energy_goodput(self, mesh_placement):
        """Paper: the advertised window + short keep-alives recover energy."""
        span_result, standard_result = self.run_pair(mesh_placement)
        assert span_result.energy_goodput > standard_result.energy_goodput

    def test_span_does_not_improve_delivery(self, mesh_placement):
        """Paper: the energy win comes with a delivery-ratio side effect
        (nodes that sleep early miss late traffic)."""
        span_result, standard_result = self.run_pair(mesh_placement)
        assert (
            span_result.delivery_ratio
            <= standard_result.delivery_ratio + 0.02
        )

    def test_span_reduces_idle_energy(self, mesh_placement):
        span_result, standard_result = self.run_pair(mesh_placement)
        assert (
            span_result.energy_summary["idle_energy"]
            < standard_result.energy_summary["idle_energy"]
        )


class TestAlwaysActiveEnergy:
    """The DSR-Active leg of the frozen-route evaluation."""

    def test_no_sleep_in_always_active_accounting(self):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (50.0, 80.0)}
        evaluator = RouteEnergyEvaluator(positions, CABLETRON)
        routes = [FlowRoute(path=(0, 1), rate=4000.0)]
        energy = _always_active_energy(evaluator, routes, duration=10.0)
        for node_id, ledger in energy.nodes.items():
            assert ledger.sleep == 0.0, node_id
            # Passive time is all idle.
            assert ledger.idle > 0.0

    def test_communication_energy_preserved(self):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0)}
        evaluator = RouteEnergyEvaluator(positions, CABLETRON)
        routes = [FlowRoute(path=(0, 1), rate=4000.0)]
        base = evaluator.evaluate(routes, 10.0, scheduling="odpm")
        always = _always_active_energy(evaluator, routes, duration=10.0)
        assert always[0].data_tx == pytest.approx(base[0].data_tx)
        assert always[1].data_rx == pytest.approx(base[1].data_rx)

    def test_always_active_costs_more_than_odpm(self):
        positions = {0: (0.0, 0.0), 1: (100.0, 0.0), 2: (50.0, 80.0),
                     3: (0.0, 160.0)}
        evaluator = RouteEnergyEvaluator(positions, CABLETRON)
        routes = [FlowRoute(path=(0, 1), rate=4000.0)]
        odpm = evaluator.evaluate(routes, 10.0, scheduling="odpm")
        always = _always_active_energy(evaluator, routes, duration=10.0)
        assert always.e_network > odpm.e_network
