"""Shared fixtures: cards, placements, small assembled networks."""

from __future__ import annotations

import random

import pytest

from repro.core.radio import CABLETRON, HYPOTHETICAL_CABLETRON, MICA2, RadioModel
from repro.net.topology import Placement, grid_placement, uniform_random_placement
from repro.sim.network import NetworkConfig, WirelessNetwork
from repro.traffic.flows import FlowSpec


@pytest.fixture
def card() -> RadioModel:
    return CABLETRON


@pytest.fixture
def line_placement() -> Placement:
    """Five nodes on a line, 150 m apart (multi-hop at 250 m range)."""
    positions = {i: (150.0 * i, 0.0) for i in range(5)}
    return Placement(positions, width=600.0, height=1.0)


@pytest.fixture
def pair_placement() -> Placement:
    """Two nodes 100 m apart."""
    return Placement({0: (0.0, 0.0), 1: (100.0, 0.0)}, width=100.0, height=1.0)


@pytest.fixture
def grid7() -> Placement:
    return grid_placement(7, 300.0, 300.0)


@pytest.fixture
def random30() -> Placement:
    rng = random.Random(42)
    return uniform_random_placement(
        30, 400.0, 400.0, rng, require_connected_range=CABLETRON.max_range
    )


def build_network(
    placement: Placement,
    protocol: str,
    flows: list[FlowSpec],
    duration: float = 30.0,
    seed: int = 1,
    card: RadioModel = CABLETRON,
    **kwargs,
) -> WirelessNetwork:
    """Assemble a network for integration-style tests."""
    config = NetworkConfig(
        placement=placement,
        card=card,
        protocol=protocol,
        flows=flows,
        duration=duration,
        seed=seed,
        **kwargs,
    )
    return WirelessNetwork(config)


def line_flow(rate_bps: float = 4000.0, start: float = 1.0, **kwargs) -> FlowSpec:
    """A flow across the 5-node line placement (node 0 -> node 4)."""
    return FlowSpec(
        flow_id=0, source=0, destination=4, rate_bps=rate_bps, start=start, **kwargs
    )
