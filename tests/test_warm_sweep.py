"""Warm-worker dispatch tests: the contract's seventh leg (warm == cold).

The warm path changes *where* work happens — placement/geometry memoized
per worker, store entries written worker-side, only digest receipts
returned — but must not change a single stored byte.  These tests pin
that equivalence on both store backends, exercise the crash/fallback
recovery paths under worker-side writes, and cover the satellites that
ride along: cost-model scheduling (permutation invariance),
``_split_for_jobs`` properties, the reporter's events/s + utilization
readout and its cache-skew-free ETA, and the zombie-free worker reaper.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

import pytest

from repro.experiments.costmodel import SweepCostModel
from repro.experiments.parallel import (
    GridBatch,
    GridCell,
    ProgressReporter,
    _split_for_jobs,
    _terminate_workers,
    batch_cells,
    grid_cells,
    run_grid,
)
from repro.experiments.resilience import (
    FAULT_INJECT_ENV,
    FaultPolicy,
    SweepManifest,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.store import ResultStore, cell_key

#: The pinned digest of the tiny fixture's (DSR-ODPM, 2 Kbit/s, seed 1)
#: cell — the same constant the orchestration and resilience suites pin
#: their legs of the determinism contract against.  The warm leg must
#: reproduce it bit for bit.
TINY_CELL_DIGEST = (
    "d038f4c678d5f4e86895ea42fa481e55b91603ff1abe311a95bff03765dfc914"
)

PINNED_CELL = GridCell("DSR-ODPM", 2.0, 1)


@pytest.fixture
def tiny() -> Scenario:
    """The same 3x3 grid the orchestration tests pin their digest on."""
    return Scenario(
        name="tiny-test",
        node_count=9,
        field_size=120.0,
        flow_count=3,
        rates_kbps=(2.0, 4.0),
        duration=10.0,
        runs=2,
        grid=True,
        protocols=("DSR-ODPM",),
    )


def _digest(result) -> str:
    canonical = json.dumps(
        result.to_payload(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _tree(root) -> dict[str, bytes]:
    """Every file under ``root`` as ``{relative_path: bytes}``."""
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def _logical_entries(store: ResultStore) -> dict[str, dict]:
    """Backend-independent view of a store's run entries."""
    return dict(store.backend.entries("runs"))


def _arm_faults(monkeypatch, tmp_path, spec: str):
    """Point REPRO_FAULT_INJECT at a fresh marker dir; returns the dir."""
    directory = tmp_path / "faults"
    monkeypatch.setenv(FAULT_INJECT_ENV, "%s%s" % (directory, spec))
    return directory


class TestWarmContract:
    def test_warm_equals_cold_bytes_json(self, tiny, tmp_path):
        """Worker-side writes produce the exact bytes parent-side did."""
        cells = grid_cells(tiny)
        cold_store = ResultStore(tmp_path / "cold", backend="json")
        warm_store = ResultStore(tmp_path / "warm", backend="json")
        cold = run_grid(tiny, cells, jobs=2, store=cold_store, warm=False)
        warm = run_grid(tiny, cells, jobs=2, store=warm_store, warm=True)
        assert _tree(tmp_path / "warm") == _tree(tmp_path / "cold")
        for cell in cells:
            assert warm[cell].to_payload() == cold[cell].to_payload()
        assert _digest(warm[PINNED_CELL]) == TINY_CELL_DIGEST
        # The writes counter keeps its meaning: one write per cell this
        # sweep produced, whoever held the pen.
        assert cold_store.writes == len(cells)
        assert warm_store.writes == len(cells)

    def test_warm_equals_cold_sqlite(self, tiny, tmp_path):
        """Same equivalence on the sqlite backend, compared logically
        (two sqlite files with identical rows differ in page bytes)."""
        cells = grid_cells(tiny)
        cold_store = ResultStore(tmp_path / "cold", backend="sqlite")
        warm_store = ResultStore(tmp_path / "warm", backend="sqlite")
        run_grid(tiny, cells, jobs=2, store=cold_store, warm=False)
        warm = run_grid(tiny, cells, jobs=2, store=warm_store, warm=True)
        cold_entries = _logical_entries(cold_store)
        warm_entries = _logical_entries(warm_store)
        assert warm_entries == cold_entries
        assert len(warm_entries) == len(cells)
        assert _digest(warm[PINNED_CELL]) == TINY_CELL_DIGEST

    def test_warm_second_invocation_hits_cache_only(self, tiny, tmp_path):
        cells = grid_cells(tiny)
        store = ResultStore(tmp_path / "store")
        run_grid(tiny, cells, jobs=2, store=store, warm=True)
        again = ResultStore(tmp_path / "store")
        results = run_grid(tiny, cells, jobs=2, store=again, warm=True)
        assert again.hits == len(cells)
        assert again.writes == 0
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST

    def test_warm_fills_a_partially_cached_campaign(self, tiny, tmp_path):
        """Cache hits and warm-dispatched cells mix without double writes."""
        cells = grid_cells(tiny)
        store = ResultStore(tmp_path / "store")
        head, tail = cells[:1], cells[1:]
        run_grid(tiny, head, jobs=1, store=store)
        resumed = ResultStore(tmp_path / "store")
        results = run_grid(tiny, cells, jobs=2, store=resumed, warm=True)
        assert resumed.hits == len(head)
        assert resumed.writes == len(tail)
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST


class TestWarmResilience:
    def test_worker_crash_heals_to_pinned_digest(
        self, tiny, monkeypatch, tmp_path
    ):
        """A worker that dies mid-batch under worker-side writes is
        retried to the exact cold-path store contents."""
        _arm_faults(monkeypatch, tmp_path, ":1")
        cells = grid_cells(tiny)
        store = ResultStore(tmp_path / "store")
        policy = FaultPolicy(max_retries=3, backoff_base_s=0.01)
        results = run_grid(
            tiny, cells, jobs=2, store=store, warm=True, policy=policy
        )
        assert set(results) == set(cells)
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST
        assert len(_logical_entries(store)) == len(cells)

    def test_bad_receipt_digest_falls_back_to_cold_dispatch(
        self, tiny, monkeypatch, tmp_path
    ):
        """A receipt whose digest does not verify is not trusted: the cell
        re-runs through the classic path and the sweep still completes.

        The fork start method ships the parent's monkeypatched module to
        the pool workers, so corrupting every receipt digest here reaches
        the worker side.
        """
        import repro.experiments.runner as runner_module

        real = runner_module.run_batch_receipts

        def forged(*args, **kwargs):
            return [
                type(receipt)(
                    key=receipt.key,
                    digest="0" * 64,
                    events=receipt.events,
                    cached=receipt.cached,
                )
                for receipt in real(*args, **kwargs)
            ]

        monkeypatch.setattr(runner_module, "run_batch_receipts", forged)
        cells = grid_cells(tiny)
        store = ResultStore(tmp_path / "store")
        results = run_grid(tiny, cells, jobs=2, store=store, warm=True)
        assert set(results) == set(cells)
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST
        # Every cell still ends up stored exactly once.
        assert len(_logical_entries(store)) == len(cells)


class TestCostModelScheduling:
    def test_order_is_longest_expected_first(self):
        model = SweepCostModel(duration_s=10.0)
        units = batch_cells(
            [
                GridCell("DSR-ODPM", rate, seed)
                for rate in (2.0, 8.0, 4.0)
                for seed in (1, 2)
            ]
        )
        ordered = model.order(units)
        assert [unit.rate_kbps for unit in ordered] == [8.0, 4.0, 2.0]

    def test_tie_break_is_original_order(self):
        model = SweepCostModel()
        units = [
            GridBatch("DSR-ODPM", 4.0, (1,)),
            GridBatch("TITAN-PC", 4.0, (1,)),
            GridBatch("DSR-Active", 4.0, (1,)),
        ]
        assert model.order(units) == units

    def test_observations_beat_the_rate_prior(self):
        """A protocol observed to be cheap at high rate sinks below one
        observed to be expensive at low rate."""
        model = SweepCostModel(duration_s=10.0)
        model.observe("CHEAP", 8.0, events=10)
        model.observe("DEAR", 2.0, events=10_000)
        units = [
            GridBatch("CHEAP", 8.0, (1,)),
            GridBatch("DEAR", 2.0, (1,)),
        ]
        assert model.order(units)[0].protocol == "DEAR"

    def test_expected_events_resolution_order(self):
        model = SweepCostModel(duration_s=10.0)
        model.observe("P", 2.0, events=100)
        # exact (protocol, rate) observation wins
        assert model.expected_events("P", 2.0) == 100
        # same protocol, other rate: scaled linearly
        assert model.expected_events("P", 4.0) == pytest.approx(200)
        # unseen protocol: any-protocol mean, scaled
        assert model.expected_events("Q", 4.0) == pytest.approx(200)
        # cold model: static prior, proportional to rate and duration
        cold = SweepCostModel(duration_s=10.0)
        assert cold.expected_events("P", 4.0) == pytest.approx(
            2 * cold.expected_events("P", 2.0)
        )

    def test_unit_cost_scales_with_batch_size(self):
        model = SweepCostModel()
        single = GridBatch("P", 4.0, (1,))
        triple = GridBatch("P", 4.0, (1, 2, 3))
        assert model.unit_cost(triple) == pytest.approx(
            3 * model.unit_cost(single)
        )

    @pytest.mark.parametrize("permutation_seed", [1, 2, 3])
    def test_permutation_invariance(
        self, tiny, tmp_path, permutation_seed
    ):
        """Any dispatch order yields identical store bytes and manifest
        state — scheduling is pure wall-clock policy."""
        import random

        cells = grid_cells(tiny)
        reference_store = ResultStore(tmp_path / "ref")
        reference_manifest = SweepManifest(tmp_path / "ref-manifest.json")
        run_grid(
            tiny, cells, jobs=2, store=reference_store,
            manifest=reference_manifest, warm=True,
        )
        shuffled = list(cells)
        random.Random(permutation_seed).shuffle(shuffled)
        store = ResultStore(tmp_path / "perm")
        manifest = SweepManifest(tmp_path / "perm-manifest.json")
        results = run_grid(
            tiny, shuffled, jobs=2, store=store, manifest=manifest,
            warm=True,
        )
        assert _tree(tmp_path / "perm") == _tree(tmp_path / "ref")
        assert manifest._states == reference_manifest._states
        assert _digest(results[PINNED_CELL]) == TINY_CELL_DIGEST


class TestSplitForJobs:
    """Properties of the batch splitter, over a grid of shapes."""

    @pytest.mark.parametrize("jobs", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("group_sizes", [(1,), (6,), (3, 3), (5, 2, 1)])
    def test_split_preserves_cells_and_order(self, group_sizes, jobs):
        batches = [
            GridBatch("P%d" % index, 2.0 * (index + 1),
                      tuple(range(1, size + 1)))
            for index, size in enumerate(group_sizes)
        ]
        split = _split_for_jobs(batches, jobs)
        # No cell lost, none duplicated, none moved between groups —
        # and within a group the seed order survives concatenation.
        for original in batches:
            parts = [
                unit for unit in split
                if (unit.protocol, unit.rate_kbps)
                == (original.protocol, original.rate_kbps)
            ]
            rejoined = tuple(
                seed for unit in parts for seed in unit.seeds
            )
            assert rejoined == original.seeds
        assert all(unit.seeds for unit in split)

    @pytest.mark.parametrize("jobs", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("group_sizes", [(1,), (6,), (3, 3), (5, 2, 1)])
    def test_split_feeds_every_worker_it_can(self, group_sizes, jobs):
        batches = [
            GridBatch("P%d" % index, 2.0 * (index + 1),
                      tuple(range(1, size + 1)))
            for index, size in enumerate(group_sizes)
        ]
        split = _split_for_jobs(batches, jobs)
        total = sum(group_sizes)
        assert len(split) >= min(jobs, total, len(batches))
        # Splitting never explodes past one unit per cell.
        assert len(split) <= total

    def test_exact_pinned_shape_unchanged(self):
        """The shape test_batch.py pins — kept here as a regression
        anchor for the scheduler-era splitter."""
        one_group = [GridBatch("DSR-ODPM", 2.0, (1, 2, 3, 4, 5, 6))]
        assert [unit.seeds for unit in _split_for_jobs(one_group, 4)] == [
            (1, 2), (3, 4), (5,), (6,)
        ]


class TestReporterReadout:
    def test_events_per_second_column(self):
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(total=2, enabled=True, stream=stream)
        reporter.note_events(50_000)
        reporter.advance(GridCell("DSR-ODPM", 2.0, 1))
        assert "ev/s" in stream.getvalue()

    def test_eta_ignores_time_spent_reading_the_cache(self):
        """A long cache-read prefix must not inflate the live ETA."""
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(total=4, enabled=True, stream=stream)
        # Pretend the sweep spent ages before the cache partition ended.
        reporter._start = time.monotonic() - 1000.0
        reporter.cached(2)
        reporter.advance(GridCell("DSR-ODPM", 2.0, 1))
        line = stream.getvalue().splitlines()[-1]
        eta = float(line.split("ETA")[1].split("s")[0])
        # One live cell took ~0s, one remains: ETA must be seconds, not
        # the ~500s a total-elapsed extrapolation would project.
        assert eta < 100.0

    def test_busy_samples_integrate_to_utilization(self):
        reporter = ProgressReporter(total=4, enabled=False)
        reporter.jobs = 2
        reporter._live_start = time.monotonic() - 1.0
        reporter.note_busy(2)
        reporter._busy_sample = (time.monotonic() - 1.0, 2)
        reporter.note_busy(0)
        assert reporter._busy_s == pytest.approx(2.0, rel=0.05)
        assert 0.0 < reporter.utilization <= 1.0

    def test_finish_prints_summary_only_after_live_cells(self):
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(total=2, enabled=True, stream=stream)
        reporter.cached(2)
        reporter.finish()
        assert "simulated" not in stream.getvalue()
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, enabled=True, stream=stream)
        reporter.note_events(1000)
        reporter.advance(GridCell("DSR-ODPM", 2.0, 1))
        reporter.finish()
        summary = stream.getvalue().splitlines()[-1]
        assert "1 cell(s) simulated" in summary
        assert "events/s" in summary


class TestTerminateWorkers:
    def test_terminated_workers_are_reaped_not_zombied(self):
        """After _terminate_workers every worker is dead *and* waited on
        (exitcode collected), so no defunct entries accumulate."""
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=2)
        pool.submit(time.sleep, 60)
        pool.submit(time.sleep, 60)
        # Let the workers actually spawn and pick the tasks up.
        deadline = time.monotonic() + 10.0
        while len(pool._processes) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        processes = list(pool._processes.values())
        _terminate_workers(pool, join_timeout_s=10.0)
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode is not None
        pool.shutdown(wait=False, cancel_futures=True)
