"""Tests for the dynamic-topology subsystem (mobility, churn, channel).

Covers the contracts the subsystem promises:

* the channel's incremental position updates produce exactly the tables a
  full re-freeze would (and count link changes);
* random-waypoint trajectories and churn schedules are pure functions of
  the master seed;
* mobile/churn cells honor the determinism contract
  (serial == parallel == cached, pinned by digest);
* static scenarios remain byte-identical to pre-mobility builds (digests
  below were recorded on the commit *before* the mobility subsystem
  landed, then re-asserted after).
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.core.energy_model import NodeEnergy
from repro.core.radio import CABLETRON, RadioState
from repro.experiments.parallel import grid_cells, run_grid
from repro.experiments.runner import run_single
from repro.experiments.scenarios import (
    Scenario,
    churn_grid,
    grid_network,
    mobile_small,
)
from repro.experiments.store import (
    CACHE_FORMAT_VERSION,
    ResultStore,
    cell_key,
)
from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.mobility import ChurnSpec, MobilitySpec
from repro.sim.network import WirelessNetwork
from repro.sim.phy import Phy


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _build_channel(positions: dict[int, tuple[float, float]]) -> Channel:
    sim = Simulator(seed=1)
    channel = Channel(sim, positions, CABLETRON.max_range)
    for node_id in positions:
        Phy(sim, channel, node_id, CABLETRON, NodeEnergy(card=CABLETRON))
    channel.freeze()
    return channel


class TestIncrementalChannel:
    def test_update_matches_full_refreeze(self):
        """Patched tables must equal tables frozen fresh at the new layout."""
        rng = random.Random(7)
        count = 20
        positions = {
            i: (rng.uniform(0, 300), rng.uniform(0, 300)) for i in range(count)
        }
        channel = _build_channel(positions)
        live = dict(positions)
        for _ in range(150):
            mover = rng.randrange(count)
            target = (rng.uniform(0, 300), rng.uniform(0, 300))
            live[mover] = target
            channel.update_position(mover, target)
        reference = _build_channel(live)
        for node_id in range(count):
            patched = channel._tables[node_id]
            fresh = reference._tables[node_id]
            assert patched.dists == fresh.dists
            assert patched.ids == fresh.ids
            assert patched.ranks == fresh.ranks
            assert [
                (rank, phy.node_id) for rank, phy in patched.by_dist
            ] == [(rank, phy.node_id) for rank, phy in fresh.by_dist]
            assert [phy.node_id for phy in patched.full] == [
                phy.node_id for phy in fresh.full
            ]

    def test_distance_cache_invalidated(self):
        channel = _build_channel({0: (0.0, 0.0), 1: (100.0, 0.0)})
        assert channel.distance(0, 1) == pytest.approx(100.0)
        channel.update_position(1, (0.0, 40.0))
        assert channel.distance(0, 1) == pytest.approx(40.0)

    def test_link_changes_counted_once_per_link(self):
        """Moving out of range breaks one undirected link, counted once."""
        channel = _build_channel({0: (0.0, 0.0), 1: (100.0, 0.0)})
        far = channel.max_range * 10
        channel.update_position(1, (far, far))
        assert channel.link_changes == 1
        assert channel.neighbors(0) == []
        channel.update_position(1, (50.0, 0.0))
        assert channel.link_changes == 2
        assert channel.neighbors(0) == [1]
        # Moving within range is not a link change.
        channel.update_position(1, (60.0, 0.0))
        assert channel.link_changes == 2

    def test_update_before_freeze_defers_to_freeze(self):
        sim = Simulator(seed=1)
        channel = Channel(
            sim, {0: (0.0, 0.0), 1: (100.0, 0.0)}, CABLETRON.max_range
        )
        Phy(sim, channel, 0, CABLETRON, NodeEnergy(card=CABLETRON))
        Phy(sim, channel, 1, CABLETRON, NodeEnergy(card=CABLETRON))
        channel.update_position(1, (50.0, 0.0))  # not frozen yet
        assert channel.neighbors(0) == [1]  # first use freezes at new layout
        assert channel._tables[0].dists == [50.0]

    def test_unknown_node_rejected(self):
        channel = _build_channel({0: (0.0, 0.0)})
        with pytest.raises(ValueError):
            channel.update_position(99, (1.0, 1.0))


class TestRandomWaypoint:
    @pytest.fixture
    def tiny_mobile(self) -> Scenario:
        """9 mobile nodes, seconds to simulate."""
        return Scenario(
            name="tiny-mobile-test",
            node_count=9,
            field_size=150.0,
            flow_count=3,
            rates_kbps=(2.0,),
            duration=15.0,
            runs=1,
            protocols=("DSR-ODPM",),
            mobility=MobilitySpec(v_min=2.0, v_max=8.0, pause=2.0, step=0.5),
        )

    def test_nodes_move_and_stay_in_field(self, tiny_mobile):
        config = tiny_mobile.config("DSR-ODPM", 2.0, seed=1)
        network = WirelessNetwork(config)
        before = dict(network.channel.positions)
        network.run()
        after = network.channel.positions
        assert after != before  # somebody moved
        for x, y in after.values():
            assert 0.0 <= x <= tiny_mobile.field_size
            assert 0.0 <= y <= tiny_mobile.field_size
        assert network.mobility is not None
        assert network.mobility.moves == network.channel.position_updates > 0

    def test_trajectories_are_seed_deterministic(self, tiny_mobile):
        def final_positions(seed: int) -> dict:
            network = WirelessNetwork(tiny_mobile.config("DSR-ODPM", 2.0, seed))
            network.run()
            return dict(network.channel.positions)

        assert final_positions(1) == final_positions(1)
        assert final_positions(1) != final_positions(2)

    def test_dynamics_recorded(self, tiny_mobile):
        result = run_single(tiny_mobile, "DSR-ODPM", 2.0, seed=1)
        assert result.dynamics is not None
        assert result.dynamics["position_updates"] > 0
        assert "dynamics" in result.to_payload()

    def test_mobility_spec_validation(self):
        with pytest.raises(ValueError):
            MobilitySpec(v_min=0.0, v_max=5.0)
        with pytest.raises(ValueError):
            MobilitySpec(v_min=5.0, v_max=1.0)
        with pytest.raises(ValueError):
            MobilitySpec(step=0.0)


class TestChurn:
    @pytest.fixture
    def tiny_churn(self) -> Scenario:
        """3x3 grid; one relay dies mid-run."""
        scenario = Scenario(
            name="tiny-churn-test",
            node_count=9,
            field_size=120.0,
            flow_count=3,
            rates_kbps=(2.0,),
            duration=30.0,
            runs=1,
            grid=True,
            protocols=("DSR-ODPM",),
        )
        return scenario.with_churn(failures=2, window=(10.0, 15.0))

    def test_failures_execute_and_spare_endpoints(self, tiny_churn):
        network = WirelessNetwork(tiny_churn.config("DSR-ODPM", 2.0, seed=1))
        network.run()
        assert network.churn is not None
        executed = network.churn.executed
        assert len(executed) == 2
        endpoints = {
            node
            for spec in network.config.flows
            for node in (spec.source, spec.destination)
        }
        for time, node_id in executed:
            assert 10.0 <= time <= 15.0
            assert node_id not in endpoints
            assert network.nodes[node_id].failed

    def test_schedule_is_seed_deterministic(self, tiny_churn):
        def plan(seed: int):
            network = WirelessNetwork(tiny_churn.config("DSR-ODPM", 2.0, seed))
            return network.churn.plan()

        assert plan(1) == plan(1)
        assert plan(1) != plan(2)

    def test_failed_node_energy_stops(self, tiny_churn):
        network = WirelessNetwork(tiny_churn.config("DSR-ODPM", 2.0, seed=1))
        result = network.run()
        (first_time, first_victim) = network.churn.executed[0]
        ledger = network.nodes[first_victim].phy.energy
        occupancy = sum(ledger.state_time.values())
        # Accrual stopped at the failure instant, not the 30 s horizon.
        assert occupancy == pytest.approx(first_time, abs=1.0)
        assert result.dynamics["nodes_failed"] == 2.0

    def test_delivery_under_churn_recorded(self, tiny_churn):
        result = run_single(tiny_churn, "DSR-ODPM", 2.0, seed=1)
        dynamics = result.dynamics
        assert dynamics is not None
        assert dynamics["nodes_failed"] == 2.0
        assert "post_churn_delivery" in dynamics
        assert 0.0 <= dynamics["post_churn_delivery"] <= 1.0

    def test_churn_spec_validation(self):
        with pytest.raises(ValueError):
            ChurnSpec(failures=0)
        with pytest.raises(ValueError):
            ChurnSpec(failures=1, window=(5.0, 2.0))

    def test_dead_node_never_announces(self):
        """A crashed PSM member with stranded MAC traffic stays silent.

        Regression: frames stuck in a dead node's MAC queue used to keep
        generating ATIM announcements every beacon — charging the halted
        battery and waking the destination peer for the rest of the run.
        """
        from repro.net.topology import Placement
        from repro.traffic.flows import FlowSpec
        from tests.conftest import build_network

        placement = Placement(
            {0: (0.0, 0.0), 1: (150.0, 0.0), 2: (300.0, 0.0)},
            width=300.0,
            height=1.0,
        )
        flows = [
            FlowSpec(flow_id=0, source=0, destination=2, rate_bps=4000.0,
                     start=1.0)
        ]
        network = build_network(placement, "DSR-ODPM", flows, duration=20.0)
        network.sim.run(until=5.0)
        relay = network.nodes[1]
        # Strand a frame in the relay's MAC, then crash it.
        from repro.sim.packet import make_data_packet

        relay.mac.send(
            make_data_packet(origin=1, final_dst=2, src=1, dst=2)
        )
        relay.fail(stop_energy=True)
        ledger = relay.phy.energy
        control_tx_at_death = ledger.control_tx
        network.run()
        assert relay.mac.has_pending()  # the frame really is stranded
        assert ledger.control_tx == control_tx_at_death


class TestDynamicDeterminismContract:
    """Mobile/churn cells are pinned exactly like the static fig8 cell.

    If a PR intentionally changes dynamic-topology behaviour, re-record
    these digests AND bump ``CACHE_FORMAT_VERSION``.
    """

    #: sha256 of the canonical-JSON payload of the mobile-small (smoke)
    #: cell at (DSR-ODPM, 4 Kbit/s, seed 1).
    MOBILE_CELL_DIGEST = (
        "4d7a549348f59eca66dbfb66e6bbbe3e82e8a9b21cfebdc929348c330c202b6d"
    )
    #: sha256 of the canonical-JSON payload of the churn-grid (smoke) cell
    #: at (DSR-ODPM, 2 Kbit/s, seed 1).
    CHURN_CELL_DIGEST = (
        "0c9f0f9c83232f3dd4f0ff1205668ebad8000eae93bceceb507b48eeb01e485c"
    )

    def test_mobile_cell_serial_parallel_cached_identical(self, tmp_path):
        scenario = mobile_small(scale="smoke")
        cells = grid_cells(scenario, ("DSR-ODPM",), (4.0,), seeds=(1,))
        (cell,) = cells
        serial = run_grid(scenario, cells, jobs=1)
        parallel = run_grid(scenario, cells, jobs=2)
        store = ResultStore(tmp_path)
        run_grid(scenario, cells, jobs=1, store=store)
        cached = run_grid(scenario, cells, jobs=1, store=store)
        assert store.hits == 1  # second pass simulated nothing
        digests = {
            _digest(results[cell].to_payload())
            for results in (serial, parallel, cached)
        }
        assert digests == {self.MOBILE_CELL_DIGEST}

    def test_churn_cell_digest_pinned(self):
        scenario = churn_grid(scale="smoke")
        result = run_single(scenario, "DSR-ODPM", 2.0, seed=1)
        assert _digest(result.to_payload()) == self.CHURN_CELL_DIGEST

    def test_cache_format_version_bumped_for_mobility(self):
        """PR contract: dynamic topology invalidates pre-mobility caches."""
        assert CACHE_FORMAT_VERSION >= 2

    def test_mobility_params_enter_cell_key(self):
        static = grid_network(scale="smoke")
        mobile = static.with_mobility(MobilitySpec())
        churny = static.with_churn(failures=2)
        keys = {
            cell_key(scenario, "DSR-ODPM", 2.0, 1)
            for scenario in (static, mobile, churny)
        }
        assert len(keys) == 3
        slower = static.with_mobility(MobilitySpec(v_max=2.0))
        assert cell_key(slower, "DSR-ODPM", 2.0, 1) != cell_key(
            mobile, "DSR-ODPM", 2.0, 1
        )


class TestStaticRegression:
    """Static scenarios must stay byte-identical to pre-mobility builds.

    Both digests below were recorded by running the *parent commit* (before
    the mobility subsystem existed) and verified unchanged afterwards; the
    fig8 pin in ``test_orchestration.py`` covers a third configuration.
    """

    GRID_CELL_DIGEST = (
        "3d42451ded61093a8b922b8ab4bd2543a9a6bae6628fbddb77158f95fddad063"
    )
    GRID_TITAN_DIGEST = (
        "739334c811f4da4c4fce9fa37b58e556f1e435727a9fa476d55d7fa34bdff52c"
    )

    def test_static_grid_cell_unchanged(self):
        scenario = grid_network(scale="smoke").scaled(duration=10.0, runs=1)
        result = run_single(scenario, "DSR-ODPM", 2.0, seed=1)
        assert result.dynamics is None
        payload = result.to_payload()
        assert "dynamics" not in payload
        assert _digest(payload) == self.GRID_CELL_DIGEST

    def test_static_titan_cell_unchanged(self):
        """TITAN-PC exercises PSM + power control through the dead-neighbor
        PSM changes, which must be no-ops without failed radios."""
        result = run_single(grid_network(scale="smoke"), "TITAN-PC", 2.0, seed=1)
        assert _digest(result.to_payload()) == self.GRID_TITAN_DIGEST

    def test_dynamics_roundtrips_through_payload(self):
        from repro.metrics.collectors import RunResult

        scenario = mobile_small(scale="smoke")
        result = run_single(scenario, "DSR-ODPM", 4.0, seed=1)
        clone = RunResult.from_payload(result.to_payload())
        assert clone.dynamics == result.dynamics
        assert _digest(clone.to_payload()) == _digest(result.to_payload())


class TestDynamicsAggregation:
    def test_aggregate_dynamics_mixed_runs(self):
        from repro.metrics.collectors import RunResult, aggregate_dynamics

        def make(seed: int, dynamics: dict | None) -> RunResult:
            return RunResult(
                protocol="DSR-ODPM",
                seed=seed,
                duration=1.0,
                flows=[],
                energy_summary={"e_network": 1.0, "transmit_energy": 0.0},
                dynamics=dynamics,
            )

        runs = [
            make(1, {"link_changes": 10.0}),
            make(2, {"link_changes": 20.0}),
            make(3, None),  # static runs contribute nothing
        ]
        aggregated = aggregate_dynamics(runs)
        assert aggregated["link_changes"].mean == pytest.approx(15.0)
        assert aggregate_dynamics([make(1, None)]) == {}
